//! Ablation: segment-compaction + stitching traversal vs per-hop walking.
//!
//! Contig generation is the latency-bound stage of the paper's pipeline: the
//! per-hop walker touches one remote vertex per k-mer per walk, from both
//! ends of every path. The segment traversal compacts each rank's owned
//! shard entirely in memory and stitches the owner-local segments with a
//! handful of aggregated endpoint-exchange rounds (predecessor resolution,
//! pointer jumping, segment shipping), so its traversal-stage traffic is
//! `O(owner crossings)` aggregated messages instead of `O(contig length)`
//! fine-grained lookups.
//!
//! This harness runs the same assembly with both traversal implementations
//! at 1, 2, 4 and 8 ranks and compares the *graph-traversal-stage traffic*
//! (fine-grained accesses plus aggregated messages — each would be one
//! network message on real hardware). It exits non-zero unless the segment
//! path produces at least 5× fewer traversal-stage messages at every rank
//! count AND byte-identical scaffolds. The measured numbers are written to
//! `BENCH_traversal.json` so the perf trajectory accumulates across commits.
//!
//! It also acts as the communication-volume drift guard: if a committed
//! `BENCH_kmer_comm.json` (written by `ablation_supermer`) reports a
//! supermer `byte_ratio` below 40×, the harness fails, so a regression in
//! the k-mer-analysis wire format cannot slip through CI unnoticed.

use baselines::{Assembler, MetaHipMerAssembler};
use mhm_bench::{fmt, print_table, scaled_eval_params, team};
use mhm_core::AssemblyConfig;
use pgas::StatsSnapshot;
use std::io::Write;

/// Events that cross (or would cross) the network: one per fine-grained
/// access, one per aggregated message — the same metric the batched-lookup
/// ablation uses.
fn traffic(s: &StatsSnapshot) -> u64 {
    s.fine_grained_ops() + s.msgs_sent
}

/// FNV-1a digest over the sorted scaffold sequences: a compact fingerprint
/// of byte-identity for the JSON snapshot.
fn scaffold_digest(seqs: &[Vec<u8>]) -> u64 {
    let mut sorted: Vec<&Vec<u8>> = seqs.iter().collect();
    sorted.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in sorted {
        for &b in s.iter().chain(&[0xFFu8]) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn run() {
    let ds = mgsim::mg64_sim(mgsim::Mg64Scale::Tiny, 20260614);
    let eval = scaled_eval_params();

    let mut rows = Vec::new();
    let mut snapshots = Vec::new();
    for ranks in [1usize, 2, 4, 8] {
        let mut outputs = Vec::new();
        for segment in [false, true] {
            let cfg = AssemblyConfig {
                use_segment_traversal: segment,
                ..Default::default()
            };
            let team = team(ranks);
            let assembler = MetaHipMerAssembler { config: cfg };
            outputs.push(assembler.assemble(&team, &ds.library, Some(&ds.rrna_consensus)));
        }
        let (hop, seg) = (&outputs[0], &outputs[1]);
        let hop_stats = hop.stage_stats("graph_traversal");
        let seg_stats = seg.stage_stats("graph_traversal");
        let (th, ts) = (traffic(&hop_stats), traffic(&seg_stats));
        let ratio = th as f64 / (ts as f64).max(1.0);
        rows.push(vec![
            ranks.to_string(),
            th.to_string(),
            ts.to_string(),
            seg_stats.traversal_rounds.to_string(),
            seg_stats.stitch_bytes.to_string(),
            fmt(ratio, 1),
        ]);

        // ---- The hard claims, per rank count --------------------------------
        let (seq_hop, seq_seg) = (hop.sequences(), seg.sequences());
        assert_eq!(
            seq_hop, seq_seg,
            "scaffolds must be byte-identical across traversal modes at {ranks} ranks"
        );
        assert!(
            ratio >= 5.0,
            "segment traversal must cut traversal-stage messages >= 5x at {ranks} ranks, \
             got {ratio:.1}x ({th} -> {ts})"
        );
        // The message win must never be bought with a byte regression: the
        // stitch rounds only re-ship still-unresolved chain heads, so the
        // segment path has to move *fewer* traversal-stage bytes than the
        // per-hop baseline at every rank count (at 2+ ranks this once blew
        // up to 36.9–86.5 MB vs the baseline's 33.8 MB because cross-rank
        // cycles chased until the round cap).
        assert!(
            seg_stats.bytes_sent <= hop_stats.bytes_sent,
            "traversal_bytes_segment must stay <= traversal_bytes_per_hop at {ranks} ranks, \
             got {} vs {}",
            seg_stats.bytes_sent,
            hop_stats.bytes_sent
        );
        let report = asm_metrics::evaluate(&seg.sequences(), &ds.refs, &eval);
        println!(
            "ranks={ranks}: {ratio:.1}x fewer traversal messages ({th} -> {ts}), {}",
            report.summary_line()
        );
        snapshots.push(format!(
            "    {{\"ranks\": {ranks}, \"traversal_msgs_per_hop\": {th}, \
             \"traversal_msgs_segment\": {ts}, \"msg_ratio\": {ratio:.2}, \
             \"stitch_rounds\": {}, \"stitch_bytes\": {}, \
             \"traversal_bytes_per_hop\": {}, \"traversal_bytes_segment\": {}, \
             \"scaffold_digest\": \"{:016x}\", \"scaffolds\": {}}}",
            seg_stats.traversal_rounds,
            seg_stats.stitch_bytes,
            hop_stats.bytes_sent,
            seg_stats.bytes_sent,
            scaffold_digest(&seq_seg),
            seq_seg.len(),
        ));
    }
    print_table(
        "Ablation — segment-compaction traversal",
        &[
            "Ranks",
            "Traffic (per-hop)",
            "Traffic (segment)",
            "Stitch rounds",
            "Stitch bytes",
            "Ratio",
        ],
        &rows,
    );

    // ---- Conformance-checking overhead guard --------------------------------
    // The collective-conformance checker must stay cheap enough to leave on
    // in every debug/test run: budget <5% wall-clock on a 4-rank assembly
    // (plus a small absolute slack — these runs finish in well under a
    // second, where scheduler noise dwarfs percentages). Min-of-repeats on
    // both sides cancels warm-up effects.
    let timed_run = |conformance: bool| {
        let cfg = AssemblyConfig {
            use_segment_traversal: true,
            ..Default::default()
        };
        let team = team(4);
        team.set_conformance_checking(conformance);
        let assembler = MetaHipMerAssembler { config: cfg };
        let start = std::time::Instant::now();
        let out = assembler.assemble(&team, &ds.library, Some(&ds.rrna_consensus));
        let secs = start.elapsed().as_secs_f64();
        assert!(!out.sequences().is_empty());
        secs
    };
    const REPS: usize = 3;
    let off = (0..REPS).map(|_| timed_run(false)).fold(f64::MAX, f64::min);
    let on = (0..REPS).map(|_| timed_run(true)).fold(f64::MAX, f64::min);
    let overhead_pct = (on / off - 1.0) * 100.0;
    println!(
        "Conformance checking at 4 ranks: off {off:.3}s, on {on:.3}s ({overhead_pct:+.1}% \
         wall-clock)"
    );
    assert!(
        on <= off * 1.05 + 0.050,
        "conformance checking costs more than 5% wall-clock at 4 ranks: \
         off {off:.3}s vs on {on:.3}s ({overhead_pct:+.1}%)"
    );

    // ---- Snapshot for the perf trajectory -----------------------------------
    let snapshot = format!(
        "{{\n  \"bench\": \"ablation_traversal\",\n  \"dataset\": \"mg64_tiny\",\n  \
         \"conformance_overhead_pct\": {overhead_pct:.2},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        snapshots.join(",\n")
    );
    let path = "BENCH_traversal.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(snapshot.as_bytes())) {
        Ok(()) => println!("Wrote {path}"),
        Err(e) => eprintln!("Could not write {path}: {e}"),
    }

    // ---- Drift guard on the supermer communication win ----------------------
    match std::fs::read_to_string("BENCH_kmer_comm.json") {
        Ok(s) => {
            let ratio: f64 = s
                .lines()
                .find(|l| l.contains("\"byte_ratio\""))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|v| v.trim().trim_end_matches(',').parse().ok())
                .expect("BENCH_kmer_comm.json has a byte_ratio field");
            assert!(
                ratio >= 40.0,
                "supermer byte_ratio drifted below 40x: {ratio:.1}x (BENCH_kmer_comm.json)"
            );
            println!("Drift guard: supermer byte_ratio {ratio:.1}x >= 40x");
        }
        Err(e) => eprintln!("Drift guard skipped: BENCH_kmer_comm.json not readable ({e})"),
    }
}

fn main() {
    // Exit non-zero even when a failure happens on a spawned rank thread
    // whose join result nobody inspects (see mhm_bench::harness_exit_code).
    mhm_bench::run_harness(run);
}
