//! Ablation: supermer-routed single-pass k-mer analysis vs per-k-mer routing.
//!
//! The k-mer analysis stage is the communication-heaviest part of the
//! pipeline: the per-k-mer baseline ships every canonical k-mer as a ~32-byte
//! packed struct — twice (once for Bloom admission, once for counting). The
//! supermer path decomposes each read once into maximal same-minimizer runs
//! and ships them as packed 2-bit sequence with a quality sidecar
//! (~(s+k−1)/4 bytes per s k-mers) to minimizer-owned shards, where Bloom
//! admission, counting and heavy-hitter sketching all happen on the receive
//! side of a single exchange.
//!
//! This harness runs the same assembly twice — supermer routing off and on —
//! and compares the *k-mer-analysis wire bytes* of the two runs. It exits
//! non-zero unless the supermer path ships at least 4× fewer bytes AND the
//! final assembly is byte-identical, so CI runs it as a smoke check. The
//! measured numbers are appended to `BENCH_kmer_comm.json` so the perf
//! trajectory accumulates across commits.

use baselines::{Assembler, MetaHipMerAssembler};
use mhm_bench::{fmt, print_table, scaled_eval_params, team};
use mhm_core::AssemblyConfig;
use std::io::Write;

fn run() {
    let ranks = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(4);
    let ds = mgsim::mg64_sim(mgsim::Mg64Scale::Tiny, 20260614);
    let eval = scaled_eval_params();

    let mut outputs = Vec::new();
    for (label, use_supermers) in [("per-kmer baseline", false), ("supermer-routed", true)] {
        let cfg = AssemblyConfig {
            use_supermers,
            ..Default::default()
        };
        let team = team(ranks);
        let assembler = MetaHipMerAssembler { config: cfg };
        let output = assembler.assemble(&team, &ds.library, Some(&ds.rrna_consensus));
        let report = asm_metrics::evaluate(&output.sequences(), &ds.refs, &eval);
        println!("{label}: {}", report.summary_line());
        outputs.push((label, output));
    }
    let base = &outputs[0].1;
    let sup = &outputs[1].1;

    let mut rows = Vec::new();
    for (stage, _, _) in &base.stages {
        let b = base.stage_stats(stage);
        let s = sup.stage_stats(stage);
        rows.push(vec![
            stage.clone(),
            b.bytes_sent.to_string(),
            s.bytes_sent.to_string(),
            s.supermer_bytes.to_string(),
            fmt(b.bytes_sent as f64 / (s.bytes_sent as f64).max(1.0), 1),
        ]);
    }
    print_table(
        "Ablation — supermer-routed k-mer analysis",
        &[
            "Stage",
            "Bytes (per-kmer)",
            "Bytes (supermer)",
            "Supermer payload",
            "Byte ratio",
        ],
        &rows,
    );

    // ---- The two hard claims of the ablation --------------------------------
    let base_bytes = base.stage_stats("kmer_analysis").bytes_sent;
    let sup_bytes = sup.stage_stats("kmer_analysis").bytes_sent;
    let ratio = base_bytes as f64 / (sup_bytes as f64).max(1.0);
    println!("\nK-mer-analysis wire bytes: {base_bytes} -> {sup_bytes} ({ratio:.1}x fewer)");
    assert!(
        ratio >= 4.0,
        "supermer routing must cut kmer-analysis wire bytes >= 4x, got {ratio:.1}x"
    );
    let (seq_base, seq_sup) = (base.sequences(), sup.sequences());
    assert_eq!(
        seq_base, seq_sup,
        "assembly must be byte-identical with and without supermer routing"
    );
    println!(
        "Assembly byte-identical across routing modes: {} scaffolds, {} bases",
        seq_sup.len(),
        seq_sup.iter().map(|s| s.len()).sum::<usize>()
    );

    // ---- Snapshot for the perf trajectory -----------------------------------
    let snapshot = format!(
        "{{\n  \"bench\": \"ablation_supermer\",\n  \"ranks\": {ranks},\n  \
         \"kmer_analysis_bytes_per_kmer\": {base_bytes},\n  \
         \"kmer_analysis_bytes_supermer\": {sup_bytes},\n  \
         \"supermer_payload_bytes\": {},\n  \"byte_ratio\": {ratio:.2},\n  \
         \"kmer_analysis_msgs_per_kmer\": {},\n  \"kmer_analysis_msgs_supermer\": {},\n  \
         \"scaffolds\": {},\n  \"total_bases\": {}\n}}\n",
        sup.stage_stats("kmer_analysis").supermer_bytes,
        base.stage_stats("kmer_analysis").msgs_sent,
        sup.stage_stats("kmer_analysis").msgs_sent,
        seq_sup.len(),
        seq_sup.iter().map(|s| s.len()).sum::<usize>(),
    );
    let path = "BENCH_kmer_comm.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(snapshot.as_bytes())) {
        Ok(()) => println!("Wrote {path}"),
        Err(e) => eprintln!("Could not write {path}: {e}"),
    }
}

fn main() {
    // Exit non-zero even when a failure happens on a spawned rank thread
    // whose join result nobody inspects (see mhm_bench::harness_exit_code).
    mhm_bench::run_harness(run);
}
