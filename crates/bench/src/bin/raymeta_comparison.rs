//! §IV-C Ray Meta comparison: MetaHipMer vs the Ray-Meta-like baseline on
//! MG64-sim at two concurrencies.
//!
//! Expected shape: MetaHipMer is substantially faster at both concurrencies
//! and scales better between them (the paper reports 71% vs 29% efficiency and
//! a 16× runtime advantage at the larger concurrency).

use baselines::{Assembler, MetaHipMerAssembler, RayMetaLike};
use mhm_bench::{fmt, print_table, run_assembler, scaled_eval_params};
use mhm_core::AssemblyConfig;

fn main() {
    let ds = mgsim::mg64_sim(mgsim::Mg64Scale::Tiny, 20260614);
    let eval = scaled_eval_params();
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let small = 2usize.min(hw);
    let large = 8usize.min(hw.max(2));
    let mut rows = Vec::new();
    let mut times = std::collections::HashMap::new();
    for ranks in [small, large] {
        for assembler in [
            &MetaHipMerAssembler {
                config: AssemblyConfig::default(),
            } as &dyn Assembler,
            &RayMetaLike {
                config: AssemblyConfig::default(),
            } as &dyn Assembler,
        ] {
            let run = run_assembler(assembler, &ds, ranks, &eval);
            times.insert((assembler.name().to_string(), ranks), run.seconds);
            rows.push(vec![
                assembler.name().to_string(),
                ranks.to_string(),
                fmt(run.seconds, 2),
                fmt(100.0 * run.report.genome_fraction, 1),
            ]);
        }
    }
    print_table(
        "Ray Meta comparison (MG64-sim)",
        &["Assembler", "Ranks", "Time (s)", "Gen. frac. %"],
        &rows,
    );
    let eff = |name: &str| {
        let t_small = times[&(name.to_string(), small)];
        let t_large = times[&(name.to_string(), large)];
        100.0 * (t_small * small as f64) / (t_large * large as f64)
    };
    let speedup =
        times[&("Ray Meta".to_string(), large)] / times[&("MetaHipMer".to_string(), large)];
    println!(
        "\nParallel efficiency {small}->{large} ranks: MetaHipMer {:.0}%, Ray Meta {:.0}%",
        eff("MetaHipMer"),
        eff("Ray Meta")
    );
    println!("MetaHipMer speedup over Ray Meta at {large} ranks: {speedup:.1}x");
}
