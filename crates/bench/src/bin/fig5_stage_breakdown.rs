//! Figure 5: fraction of the runtime spent in each pipeline stage as the
//! concurrency grows (same runs as Figure 4, different report).
//!
//! Expected shape: alignment dominates at small concurrency (~50% in the
//! paper); at higher concurrency the local-assembly share grows because of
//! load imbalance, reducing overall scalability.

use baselines::MetaHipMerAssembler;
use mhm_bench::{fmt, print_table, rank_sweep, run_assembler, scale, scaled_eval_params};
use mhm_core::AssemblyConfig;
use pgas::stats::load_balance_ratio;

const STAGES: &[&str] = &[
    "kmer_analysis",
    "kmer_merging",
    "graph_traversal",
    "bubble_pruning",
    "alignment",
    "local_assembly",
    "read_localization",
    "scaffolding",
];

fn main() {
    let ds = mgsim::wetlands_sim(3 * scale(), 20260614);
    let eval = scaled_eval_params();
    let mut rows = Vec::new();
    for ranks in rank_sweep(16) {
        let run = run_assembler(
            &MetaHipMerAssembler {
                config: AssemblyConfig::default(),
            },
            &ds,
            ranks,
            &eval,
        );
        let total: f64 = STAGES.iter().map(|s| run.output.stage_seconds(s)).sum();
        let balance = load_balance_ratio(
            &run.output
                .local_assembly_work
                .iter()
                .map(|&w| w as f64)
                .collect::<Vec<_>>(),
        );
        let mut row = vec![ranks.to_string()];
        for stage in STAGES {
            let frac = if total > 0.0 {
                100.0 * run.output.stage_seconds(stage) / total
            } else {
                0.0
            };
            row.push(fmt(frac, 1));
        }
        row.push(fmt(balance, 2));
        rows.push(row);
    }
    let mut header: Vec<&str> = vec!["Ranks"];
    header.extend(STAGES.iter().copied());
    header.push("local-assembly balance");
    print_table("Figure 5 — runtime fraction per stage (%)", &header, &rows);
}
