//! Table II: weak scaling with MGSim-generated communities of growing
//! complexity (taxa and reads grow with the rank count).
//!
//! Expected shape: the assembly rate (kilobases of reads consumed per second
//! per rank) drops slightly from the first to the second point and then stays
//! roughly flat (the paper reports 0.16 → 0.12 kbases/s/node and ~75%
//! efficiency from 128 to 1024 nodes).

use baselines::MetaHipMerAssembler;
use mhm_bench::{fmt, print_table, run_assembler, scale, scaled_eval_params};
use mhm_core::AssemblyConfig;

fn main() {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let eval = scaled_eval_params();
    let mut rows = Vec::new();
    let base_taxa = 5 * scale();
    let mut first_rate = None;
    for (i, ranks) in [1usize, 2, 4, 8].iter().copied().enumerate() {
        if ranks > hw.max(2) {
            break;
        }
        let taxa = base_taxa * (1 << i);
        let ds = mgsim::weak_scaling_dataset(taxa, 20260614 + i as u64);
        let run = run_assembler(
            &MetaHipMerAssembler {
                config: AssemblyConfig::default(),
            },
            &ds,
            ranks,
            &eval,
        );
        let kbases = ds.total_bases() as f64 / 1000.0;
        let rate = kbases / run.seconds / ranks as f64;
        let eff = match first_rate {
            None => {
                first_rate = Some(rate);
                100.0
            }
            Some(r0) => 100.0 * rate / r0,
        };
        rows.push(vec![
            ranks.to_string(),
            (ds.library.num_reads()).to_string(),
            taxa.to_string(),
            fmt(rate, 2),
            fmt(eff, 1),
            fmt(100.0 * run.report.genome_fraction, 1),
        ]);
    }
    print_table(
        "Table II — weak scaling (MGSim series)",
        &[
            "Ranks",
            "Reads",
            "Genomic taxa",
            "KBases/s/rank",
            "Weak-scaling efficiency %",
            "Gen. frac. %",
        ],
        &rows,
    );
}
