//! Criterion micro-benchmarks of the distributed substrates: the four
//! hash-table phases, k-mer analysis, graph traversal, alignment and the
//! Bloom/heavy-hitter structures. `cargo bench -p mhm_bench` runs them all.

use aligner::{align_reads, build_seed_index, AlignParams};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dbg::{
    build_graph, kmer_analysis, traverse_contigs, KmerAnalysisParams, ThresholdPolicy,
    TraversalParams,
};
use dht::{bulk_merge, DistBloom, DistMap, SpaceSaving};
use mgsim::{CommunityParams, ReadSimParams};
use pgas::Team;
use seqio::Read;
use std::sync::Arc;

fn dataset() -> (Vec<Read>, dbg::ContigSet) {
    let (refs, _) = mgsim::generate_community(&CommunityParams {
        num_taxa: 3,
        genome_len_range: (5_000, 6_000),
        seed: 99,
        ..Default::default()
    });
    let lib = mgsim::simulate_reads(
        &refs,
        &ReadSimParams {
            read_len: 100,
            seed: 100,
            ..Default::default()
        }
        .with_target_coverage(&refs, 12.0),
    );
    let contigs = dbg::ContigSet::from_sequences(
        31,
        refs.genomes.iter().map(|g| (g.seq.clone(), 10.0)).collect(),
    );
    (lib.reads, contigs)
}

fn bench_dht_phases(c: &mut Criterion) {
    let team = Team::single_node(4);
    c.bench_function("dht/update_only_bulk_merge_100k", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
                bulk_merge(
                    ctx,
                    &map,
                    (0..25_000u64).map(|k| (k % 5_000, 1)),
                    2048,
                    |a, v| *a += v,
                );
            })
        })
    });
    c.bench_function("dht/global_read_write_20k", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
                for i in 0..5_000u64 {
                    map.update(ctx, &(i % 1000), |v| {
                        if let Some(v) = v {
                            *v += 1
                        }
                    });
                    map.upsert(ctx, i % 1000, || 0, |v| *v += 1);
                }
            })
        })
    });
    c.bench_function("dht/bloom_insert_40k", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let bloom = ctx.share(|| DistBloom::new(ctx.ranks(), 40_000, 0.01));
                for i in 0..10_000u64 {
                    bloom.insert_and_check(ctx, &(i ^ (ctx.rank() as u64) << 32));
                }
            })
        })
    });
    c.bench_function("dht/space_saving_100k", |b| {
        b.iter(|| {
            let mut ss = SpaceSaving::new(64);
            for i in 0..100_000u64 {
                ss.offer(i % 1_000, 1);
            }
            ss.heavy_hitters(50)
        })
    });
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let (reads, contigs) = dataset();
    let team = Team::single_node(4);
    c.bench_function("dbg/kmer_analysis_k21", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let range = ctx.block_range(reads.len());
                let params = KmerAnalysisParams {
                    k: 21,
                    use_bloom: false,
                    ..Default::default()
                };
                kmer_analysis(ctx, &reads[range], &params).counts.len()
            })
        })
    });
    c.bench_function("dbg/traversal_k21", |b| {
        b.iter_batched(
            || {
                team.run(|ctx| {
                    let range = ctx.block_range(reads.len());
                    let params = KmerAnalysisParams {
                        k: 21,
                        use_bloom: false,
                        ..Default::default()
                    };
                    kmer_analysis(ctx, &reads[range], &params)
                })
                .pop()
                .unwrap()
            },
            |analysis| {
                team.run(|ctx| {
                    let graph =
                        build_graph(ctx, &analysis.counts, ThresholdPolicy::metahipmer_default());
                    traverse_contigs(ctx, &graph, 21, &TraversalParams::default()).len()
                })
            },
            BatchSize::LargeInput,
        )
    });
    c.bench_function("aligner/align_2k_reads", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let index = build_seed_index(ctx, &contigs, 15);
                ctx.barrier();
                let range = ctx.block_range(reads.len().min(2000));
                let my = range.map(|i| (i as u64, reads[i].clone()));
                align_reads(
                    ctx,
                    my,
                    &contigs,
                    &index,
                    &AlignParams {
                        seed_len: 15,
                        ..Default::default()
                    },
                )
                .alignments
                .len()
            })
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dht_phases, bench_pipeline_stages
}
criterion_main!(benches);
