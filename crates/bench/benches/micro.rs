//! Criterion micro-benchmarks of the distributed substrates: the four
//! hash-table phases, k-mer analysis, the extraction hot loops (rolling
//! minimizer, supermer grouping), both graph-traversal implementations,
//! alignment and the Bloom/heavy-hitter structures. `cargo bench -p
//! mhm_bench` runs them all.

use aligner::{align_reads, build_seed_index, AlignParams};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dbg::{
    build_graph, kmer_analysis, traverse_contigs, KmerAnalysisParams, ThresholdPolicy,
    TraversalParams,
};
use dht::{bulk_merge, DistBloom, DistMap, SpaceSaving};
use kmers::{kmer_minimizer, Kmer, SupermerIter};
use mgsim::{CommunityParams, ReadSimParams};
use pgas::Team;
use seqio::Read;
use std::sync::Arc;

fn dataset() -> (Vec<Read>, dbg::ContigSet) {
    let (refs, _) = mgsim::generate_community(&CommunityParams {
        num_taxa: 3,
        genome_len_range: (5_000, 6_000),
        seed: 99,
        ..Default::default()
    });
    let lib = mgsim::simulate_reads(
        &refs,
        &ReadSimParams {
            read_len: 100,
            seed: 100,
            ..Default::default()
        }
        .with_target_coverage(&refs, 12.0),
    );
    let contigs = dbg::ContigSet::from_sequences(
        31,
        refs.genomes.iter().map(|g| (g.seq.clone(), 10.0)).collect(),
    );
    (lib.reads, contigs)
}

fn bench_dht_phases(c: &mut Criterion) {
    let team = Team::single_node(4);
    c.bench_function("dht/update_only_bulk_merge_100k", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
                bulk_merge(
                    ctx,
                    &map,
                    (0..25_000u64).map(|k| (k % 5_000, 1)),
                    2048,
                    |a, v| *a += v,
                );
            })
        })
    });
    c.bench_function("dht/global_read_write_20k", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let map: Arc<DistMap<u64, u64>> = DistMap::shared(ctx);
                for i in 0..5_000u64 {
                    map.update(ctx, &(i % 1000), |v| {
                        if let Some(v) = v {
                            *v += 1
                        }
                    });
                    map.upsert(ctx, i % 1000, || 0, |v| *v += 1);
                }
            })
        })
    });
    c.bench_function("dht/bloom_insert_40k", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let bloom = ctx.share(|| DistBloom::new(ctx.ranks(), 40_000, 0.01));
                for i in 0..10_000u64 {
                    bloom.insert_and_check(ctx, &(i ^ (ctx.rank() as u64) << 32));
                }
            })
        })
    });
    c.bench_function("dht/space_saving_100k", |b| {
        b.iter(|| {
            let mut ss = SpaceSaving::new(64);
            for i in 0..100_000u64 {
                ss.offer(i % 1_000, 1);
            }
            ss.heavy_hitters(50)
        })
    });
}

fn bench_extraction_hot_loops(c: &mut Criterion) {
    // A 100 kb pseudo-random sequence: long enough that the rolling-minimizer
    // deque and the supermer run-grouping dominate, not setup.
    let seq: Vec<u8> = {
        let mut x = 0x9E3779B97F4A7C15u64;
        (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                [b'A', b'C', b'G', b'T'][(x & 3) as usize]
            })
            .collect()
    };
    c.bench_function("kmers/rolling_minimizer_100kb", |b| {
        // The streaming path: one O(len) pass maintains every window's
        // canonical minimizer through the monotonic deque.
        b.iter(|| {
            SupermerIter::new(&seq, 21, 15)
                .map(|s| s.minimizer)
                .sum::<u64>()
        })
    });
    c.bench_function("kmers/kmer_minimizer_1k_windows", |b| {
        // The per-k-mer recomputation (owner-side routing checks).
        let kmers: Vec<Kmer> = (0..1000)
            .map(|i| Kmer::from_bytes(&seq[i..i + 21]).unwrap())
            .collect();
        b.iter(|| kmers.iter().map(|km| kmer_minimizer(km, 15)).sum::<u64>())
    });
    c.bench_function("kmers/supermer_iter_100kb", |b| {
        b.iter(|| {
            SupermerIter::new(&seq, 21, 15)
                .map(|s| s.kmers)
                .sum::<usize>()
        })
    });
}

fn bench_compute_kernels(c: &mut Criterion) {
    // 1 Mb pseudo-random sequence for the bulk codecs, plus a sprinkling of
    // Ns so the pack path exercises its exception handling.
    let seq: Vec<u8> = {
        let mut x = 0xD1B54A32D192ED03u64;
        (0..1 << 20)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                [b'A', b'C', b'G', b'T'][(x & 3) as usize]
            })
            .collect()
    };
    let mut noisy = seq.clone();
    for i in (0..noisy.len()).step_by(997) {
        noisy[i] = b'N';
    }
    let packed = dbg::PackedSeq::from_bytes(&seq);
    c.bench_function("kernels/pack_1mb", |b| {
        b.iter(|| dbg::PackedSeq::from_bytes(&noisy).packed_bytes())
    });
    c.bench_function("kernels/unpack_1mb", |b| b.iter(|| packed.unpack().len()));

    // k=95 spans three words of the packed representation.
    let kmers_95: Vec<Kmer> = (0..2_000)
        .map(|i| Kmer::from_bytes(&seq[i * 97..i * 97 + 95]).unwrap())
        .collect();
    c.bench_function("kernels/revcomp_2k_k95", |b| {
        b.iter(|| {
            kmers_95
                .iter()
                .map(|km| km.revcomp().first_code() as u64)
                .sum::<u64>()
        })
    });
    c.bench_function("kernels/canonical_2k_k95", |b| {
        b.iter(|| {
            kmers_95
                .iter()
                .map(|km| km.canonical().0.first_code() as u64)
                .sum::<u64>()
        })
    });

    // The aligner's ungapped verification rule over a correlated pair.
    let read_side: Vec<u8> = noisy
        .iter()
        .enumerate()
        .map(|(i, &b)| if i % 7 == 0 { b'A' } else { b })
        .collect();
    c.bench_function("kernels/verify_match_count_1mb", |b| {
        b.iter(|| mhm_simd::match_count_except(&noisy, &read_side, b'N'))
    });
}

fn bench_read_store(c: &mut Criterion) {
    let (reads, _) = dataset();
    let lib = {
        let mut lib = seqio::ReadLibrary::new_unpaired("bench");
        lib.reads = reads.clone();
        lib
    };
    // The ingestion hot loop: 2-bit packing + quality run-length encoding.
    c.bench_function("readstore/pack_reads", |b| {
        b.iter(|| {
            reads
                .iter()
                .map(|r| readstore::PackedRead::from_read(r).packed_bytes())
                .sum::<usize>()
        })
    });
    // The consumer hot loop: unpacking sequence + qualities back out.
    let packed: Vec<readstore::PackedRead> =
        reads.iter().map(readstore::PackedRead::from_read).collect();
    c.bench_function("readstore/unpack_reads", |b| {
        b.iter(|| packed.iter().map(|p| p.unpack().seq.len()).sum::<usize>())
    });
    // A full cold-cache fill: every rank fetches every foreign block once
    // through the aggregated collective path.
    let team = Team::single_node(4);
    c.bench_function("readstore/block_fetch_fill_4ranks", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let store =
                    readstore::ReadStore::build(ctx, &lib, &readstore::ReadStoreParams::default());
                let mut reader = store.reader(ctx);
                let ids: Vec<u64> = (0..store.num_blocks() as u64).collect();
                reader
                    .get_many(ctx, &ids)
                    .iter()
                    .flatten()
                    .map(|blk| blk.packed_bytes())
                    .sum::<usize>()
            })
        })
    });
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let (reads, contigs) = dataset();
    let team = Team::single_node(4);
    c.bench_function("dbg/kmer_analysis_k21", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let range = ctx.block_range(reads.len());
                let params = KmerAnalysisParams {
                    k: 21,
                    use_bloom: false,
                    ..Default::default()
                };
                kmer_analysis(ctx, &reads[range], &params).counts.len()
            })
        })
    });
    // Both traversal implementations over the same graph: the segment
    // compactor (default) and the per-hop ablation baseline, so hot-loop
    // regressions in either show up without running the full pipeline.
    for (name, segment) in [
        ("dbg/traversal_segment_k21", true),
        ("dbg/traversal_perhop_k21", false),
    ] {
        let reads = reads.clone();
        let team = Arc::clone(&team);
        c.bench_function(name, move |b| {
            b.iter_batched(
                || {
                    team.run(|ctx| {
                        let range = ctx.block_range(reads.len());
                        let params = KmerAnalysisParams {
                            k: 21,
                            use_bloom: false,
                            ..Default::default()
                        };
                        kmer_analysis(ctx, &reads[range], &params)
                    })
                    .pop()
                    .unwrap()
                },
                |analysis| {
                    team.run(|ctx| {
                        let graph = build_graph(
                            ctx,
                            &analysis.counts,
                            ThresholdPolicy::metahipmer_default(),
                        );
                        traverse_contigs(
                            ctx,
                            &graph,
                            21,
                            &TraversalParams {
                                use_segment_traversal: segment,
                                ..Default::default()
                            },
                        )
                        .len()
                    })
                },
                BatchSize::LargeInput,
            )
        });
    }
    c.bench_function("aligner/align_2k_reads", |b| {
        b.iter(|| {
            team.run(|ctx| {
                let index = build_seed_index(ctx, &contigs, 15);
                ctx.barrier();
                let range = ctx.block_range(reads.len().min(2000));
                let my = range.map(|i| (i as u64, reads[i].clone()));
                align_reads(
                    ctx,
                    my,
                    &contigs,
                    &index,
                    &AlignParams {
                        seed_len: 15,
                        ..Default::default()
                    },
                )
                .alignments
                .len()
            })
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dht_phases, bench_extraction_hot_loops, bench_compute_kernels, bench_read_store, bench_pipeline_stages
}
criterion_main!(benches);
