//! Schedule-perturbing race harness for the PGAS runtime.
//!
//! Every scenario in this crate is a small SPMD program with a property that
//! must hold under *any* thread interleaving: mailbox reuse stays
//! linearizable, back-to-back aggregators never alias each other's leases,
//! a killed rank's poison reaches every survivor (nobody deadlocks), and
//! cached reads agree with the authoritative table. The harness runs each
//! scenario with the [`mhm_sched`] shim enabled, which injects seeded
//! yields and micro-sleeps at the runtime's `yield_point` call sites —
//! barrier entry/exit, mailbox deposit/drain, cache probes — so
//! interleavings that an unloaded test machine would effectively never
//! produce are explored deliberately.
//!
//! Exploration is *seeded*: a seed picks a deterministic sequence of
//! perturbation decisions, and the CLI sweeps a seed range. It is not
//! *replayable* — the decisions are deterministic, but which thread reaches
//! a yield point first still depends on the OS scheduler — so a failing
//! seed is a strong hint, not a guaranteed reproduction. Every scenario
//! runs under a watchdog ([`std::sync::mpsc::Receiver::recv_timeout`]); a
//! watchdog expiry is itself a failure verdict, because the one acceptable
//! outcome of a kill is an orderly [`pgas::RankFault`] on every survivor,
//! never a hang.
//!
//! Scenarios are serialized behind a process-global lock: the scheduler
//! shim is process-wide state, and two scenarios perturbing each other
//! would destroy the seed's meaning.

use pgas::{FaultPlan, RankFault, Team, Topology};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

/// One scenario's verdict for one seed.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Scenario name (stable identifier, used in CLI output).
    pub name: &'static str,
    /// The perturbation seed the scenario ran under.
    pub seed: u64,
    /// `Ok(())` or a failure description (assertion text, panic payload, or
    /// a watchdog-expiry diagnosis).
    pub outcome: Result<(), String>,
}

/// Exploration parameters for one scenario run.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Upper bound on injected perturbations (yields + sleeps) per run.
    pub max_perturbations: u64,
    /// Upper bound on a single injected sleep, in microseconds.
    pub max_sleep_us: u64,
    /// Watchdog timeout; expiry is reported as a suspected deadlock.
    pub watchdog: Duration,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_perturbations: 2_000,
            max_sleep_us: 50,
            watchdog: Duration::from_secs(60),
        }
    }
}

/// Serializes scenarios: the scheduler shim is process-global.
static SCENARIO_LOCK: Mutex<()> = Mutex::new(());

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(f) = payload.downcast_ref::<RankFault>() {
        format!("unhandled {f:?}")
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `body` with the scheduler shim enabled at `seed` under a watchdog.
///
/// The shim is enabled before the scenario thread starts and disabled
/// before this function returns, in both the completed and the timed-out
/// case. A timed-out scenario thread is leaked — it is by definition stuck
/// inside the runtime, and there is no safe way to unwind someone else's
/// deadlock — but with the shim already disabled it cannot perturb later
/// scenarios.
fn run_scenario(
    name: &'static str,
    seed: u64,
    budget: Budget,
    body: fn(u64) -> Result<(), String>,
) -> ScenarioResult {
    let _serial = SCENARIO_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    mhm_sched::enable(mhm_sched::Config {
        seed,
        max_perturbations: budget.max_perturbations,
        max_sleep_us: budget.max_sleep_us,
    });
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name(format!("mhm_check::{name}"))
        .spawn(move || {
            let verdict = std::panic::catch_unwind(AssertUnwindSafe(|| body(seed)));
            let _ = tx.send(verdict);
        });
    let outcome = match spawned {
        Err(e) => Err(format!("failed to spawn scenario thread: {e}")),
        Ok(handle) => match rx.recv_timeout(budget.watchdog) {
            Ok(verdict) => {
                let _ = handle.join();
                match verdict {
                    Ok(inner) => inner,
                    Err(payload) => Err(format!("panicked: {}", panic_message(payload))),
                }
            }
            Err(_) => Err(format!(
                "watchdog expired after {:?}: a survivor rank is deadlocked (poison did not \
                 propagate, or a collective lost a participant)",
                budget.watchdog
            )),
        },
    };
    mhm_sched::disable();
    ScenarioResult {
        name,
        seed,
        outcome,
    }
}

// ---------------------------------------------------------------------------
// Scenario bodies.
// ---------------------------------------------------------------------------

/// Mailbox-reuse linearizability: the same team exchanges phase-tagged
/// payloads over many rounds, reusing the pooled mailbox slots every time.
/// Each inbox must hold exactly one item per sender, all carrying the
/// *current* phase tag — a stale deposit surviving a slot's reuse, or a
/// deposit leaking between phases, shows up as a foreign tag or a bad count.
fn mailbox_linearizability(_seed: u64) -> Result<(), String> {
    const RANKS: usize = 4;
    const PHASES: u64 = 8;
    let team = Team::new(Topology::new(RANKS, 2));
    let results = team.run(|ctx| {
        for phase in 0..PHASES {
            let src = ctx.rank() as u64;
            let outgoing: Vec<Vec<u64>> = (0..ctx.ranks() as u64)
                .map(|dst| vec![phase * 1_000_000 + src * 1_000 + dst])
                .collect();
            let mut inbox = ctx.exchange(outgoing);
            inbox.sort_unstable();
            let want: Vec<u64> = (0..ctx.ranks() as u64)
                .map(|sender| phase * 1_000_000 + sender * 1_000 + src)
                .collect();
            if inbox != want {
                return Err(format!(
                    "rank {} phase {phase}: inbox {inbox:?} != expected {want:?}",
                    ctx.rank()
                ));
            }
        }
        Ok(())
    });
    results.into_iter().collect::<Result<Vec<()>, _>>()?;
    Ok(())
}

/// Back-to-back same-typed aggregators reusing one slot pool: every
/// iteration runs two `Aggregator<u64>` rounds in disjoint value bands,
/// each finishing before the next begins. A finish that fails to drain its
/// lease, or a lease handed out before the previous round's trailing
/// barrier completed, delivers a foreign-band item to the next round.
fn aggregator_slot_reuse(_seed: u64) -> Result<(), String> {
    const RANKS: usize = 4;
    const ITEMS: u64 = 8;
    let team = Team::new(Topology::single_node(RANKS));
    let results = team.run(|ctx| {
        for round in 0u64..4 {
            for band in [1_000u64, 2_000_000] {
                let mut agg = pgas::Aggregator::<u64>::new(ctx, 3);
                for i in 0..ITEMS {
                    let dst = (i as usize + ctx.rank()) % ctx.ranks();
                    agg.push(dst, band + round * ITEMS + i);
                }
                let got = agg.finish();
                if got.len() != ITEMS as usize {
                    return Err(format!(
                        "rank {} round {round} band {band}: received {} items, expected {ITEMS}",
                        ctx.rank(),
                        got.len()
                    ));
                }
                let (lo, hi) = (band + round * ITEMS, band + round * ITEMS + ITEMS - 1);
                if let Some(&stale) = got.iter().find(|&&v| v < lo || v > hi) {
                    return Err(format!(
                        "rank {} round {round} band {band}: item {stale} escapes [{lo}, {hi}] — \
                         a deposit from another aggregation round leaked through slot reuse",
                        ctx.rank()
                    ));
                }
            }
        }
        Ok(())
    });
    results.into_iter().collect::<Result<Vec<()>, _>>()?;
    Ok(())
}

/// Poison propagation: a planned kill must end the whole team with an
/// orderly `RankFault`; any survivor blocking forever trips the watchdog.
fn poison_propagation(_seed: u64) -> Result<(), String> {
    const RANKS: usize = 4;
    let team = Team::new(Topology::new(RANKS, 2));
    team.set_fault_plans(&[FaultPlan {
        rank: 2,
        after_barriers: 3,
    }]);
    let result = team.try_run(|ctx| {
        for _ in 0..16 {
            let outgoing: Vec<Vec<u64>> = vec![vec![ctx.rank() as u64]; ctx.ranks()];
            let _ = ctx.exchange(outgoing);
            ctx.barrier();
        }
    });
    match result {
        Err(RankFault { rank: 2, .. }) => Ok(()),
        Err(other) => Err(format!("wrong fault surfaced: {other:?}")),
        Ok(_) => Err("planned kill of rank 2 never fired".to_string()),
    }
}

/// Multi-kill poison propagation: two ranks die at different barriers; the
/// run must still end with a `RankFault` for one of them (the earlier kill
/// normally wins, but perturbation may reorder the panics) and no survivor
/// may hang.
fn poison_propagation_multi_kill(_seed: u64) -> Result<(), String> {
    const RANKS: usize = 4;
    let team = Team::new(Topology::new(RANKS, 2));
    team.set_fault_plans(&[
        FaultPlan {
            rank: 1,
            after_barriers: 2,
        },
        FaultPlan {
            rank: 3,
            after_barriers: 5,
        },
    ]);
    let result = team.try_run(|ctx| {
        for _ in 0..16 {
            ctx.barrier();
        }
    });
    match result {
        Err(RankFault { rank, .. }) if rank == 1 || rank == 3 => Ok(()),
        Err(other) => Err(format!("wrong fault surfaced: {other:?}")),
        Ok(_) => Err("neither planned kill fired".to_string()),
    }
}

/// Cached reads agree with the authoritative table under perturbation: a
/// `CachedView`'s miss path (aggregated remote fetch), its hit/evict path
/// (the cache is far smaller than the key set) and the table's own bulk
/// lookup must all return the same values.
fn cached_view_consistency(_seed: u64) -> Result<(), String> {
    const RANKS: usize = 4;
    const KEYS: u64 = 192;
    let team = Team::new(Topology::new(RANKS, 2));
    let results = team.run(|ctx| {
        let map = dht::DistMap::<u64, u64>::shared(ctx);
        let mine: Vec<(u64, u64)> = (0..KEYS)
            .filter(|k| k % ctx.ranks() as u64 == ctx.rank() as u64)
            .map(|k| (k, k * 3 + 1))
            .collect();
        dht::bulk_merge(ctx, &map, mine, 16, |slot, v| *slot = v);
        let keys: Vec<u64> = (0..KEYS).collect();
        let want: Vec<Option<u64>> = keys.iter().map(|&k| Some(k * 3 + 1)).collect();
        let mut view = dht::CachedView::new(&map, 64, 16);
        let cold = view.get_many(ctx, &keys);
        let warm = view.get_many(ctx, &keys);
        ctx.barrier();
        let direct = map.get_many(ctx, &keys, 16);
        for (label, got) in [("cold", &cold), ("warm", &warm), ("direct", &direct)] {
            if *got != want {
                let bad = keys.iter().zip(got.iter()).find(|(k, v)| {
                    let k = **k as usize;
                    want[k] != **v
                });
                return Err(format!(
                    "rank {}: {label} read diverges from the table at {bad:?}",
                    ctx.rank()
                ));
            }
        }
        Ok(())
    });
    results.into_iter().collect::<Result<Vec<()>, _>>()?;
    Ok(())
}

/// A scenario body: takes the perturbation seed, returns the verdict.
pub type ScenarioFn = fn(u64) -> Result<(), String>;

/// The scenario registry, in the order the CLI runs them.
pub const SCENARIOS: &[(&str, ScenarioFn)] = &[
    ("mailbox_linearizability", mailbox_linearizability),
    ("aggregator_slot_reuse", aggregator_slot_reuse),
    ("poison_propagation", poison_propagation),
    (
        "poison_propagation_multi_kill",
        poison_propagation_multi_kill,
    ),
    ("cached_view_consistency", cached_view_consistency),
];

/// Runs every scenario once at `seed` and returns all verdicts.
pub fn run_all(seed: u64, budget: Budget) -> Vec<ScenarioResult> {
    SCENARIOS
        .iter()
        .map(|&(name, body)| run_scenario(name, seed, budget, body))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_budget() -> Budget {
        Budget {
            max_perturbations: 200,
            max_sleep_us: 20,
            watchdog: Duration::from_secs(120),
        }
    }

    #[test]
    fn every_scenario_passes_under_a_small_perturbation_budget() {
        for seed in [1u64, 2] {
            for result in run_all(seed, small_budget()) {
                assert!(
                    result.outcome.is_ok(),
                    "{} failed at seed {}: {}",
                    result.name,
                    result.seed,
                    result.outcome.as_ref().unwrap_err()
                );
            }
        }
    }

    #[test]
    fn watchdog_reports_a_hang_instead_of_blocking_forever() {
        fn hangs(_seed: u64) -> Result<(), String> {
            std::thread::sleep(Duration::from_secs(3600));
            Ok(())
        }
        let r = run_scenario(
            "hang_probe",
            1,
            Budget {
                watchdog: Duration::from_millis(100),
                ..small_budget()
            },
            hangs,
        );
        let msg = r.outcome.unwrap_err();
        assert!(msg.contains("watchdog expired"), "got: {msg}");
        assert!(!mhm_sched::is_enabled(), "shim left enabled after timeout");
    }
}
