//! CLI driver: sweeps a seed range over every registered scenario.
//!
//! ```text
//! mhm_check [--seeds N] [--budget P] [--sleep-us U]
//! ```
//!
//! Runs seeds `1..=N` (default 4) with a perturbation budget of `P`
//! injected yields/sleeps per scenario run (default 2000), printing one
//! line per verdict. Exits non-zero if any scenario fails under any seed.

use mhm_check::{run_all, Budget};
use std::time::Duration;

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds = parse_flag(&args, "--seeds").unwrap_or(4);
    let mut budget = Budget::default();
    if let Some(p) = parse_flag(&args, "--budget") {
        budget.max_perturbations = p;
    }
    if let Some(u) = parse_flag(&args, "--sleep-us") {
        budget.max_sleep_us = u;
    }
    budget.watchdog = Duration::from_secs(120);

    let mut failures = 0usize;
    for seed in 1..=seeds {
        for result in run_all(seed, budget) {
            match &result.outcome {
                Ok(()) => println!("ok   seed={:<4} {}", result.seed, result.name),
                Err(msg) => {
                    failures += 1;
                    println!("FAIL seed={:<4} {}: {msg}", result.seed, result.name);
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("mhm_check: {failures} scenario run(s) failed");
        std::process::exit(1);
    }
    println!("mhm_check: all scenarios passed over {seeds} seed(s)");
}
