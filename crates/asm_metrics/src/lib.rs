//! metaQUAST-substitute assembly evaluation.
//!
//! The paper evaluates every assembly with metaQUAST 4.3 against the known
//! reference genomes of the MG64 community: contiguity (assembled bases in
//! sequences above length thresholds), coverage (genome fraction), correctness
//! (misassembly count), per-genome NGA50 (Figure 6) and the number of
//! ribosomal RNA structures recovered. Because our reference genomes are the
//! simulator's own output, exact k-mer anchoring of scaffolds onto references
//! is possible and the same metric definitions can be computed directly:
//!
//! * assembly sequences are anchored to references with unique reference
//!   k-mers and the anchors are chained into collinear **aligned blocks**;
//! * a breakpoint between adjacent blocks of one scaffold (different genome,
//!   strand flip, or a large positional jump) counts as a **misassembly**;
//! * **genome fraction** is the covered share of each reference;
//! * **NGA50** is the block length at which the sorted aligned blocks of a
//!   genome cover half of that genome;
//! * **rRNA recovery** counts planted rRNA regions covered by aligned blocks
//!   (and, optionally, assembly sequences flagged by the profile HMM).

pub mod eval;
pub mod report;

pub use eval::{evaluate, EvalParams};
pub use report::{AssemblyReport, GenomeReport};
