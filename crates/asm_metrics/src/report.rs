//! Report types produced by the evaluator.

/// Per-reference-genome evaluation results.
#[derive(Debug, Clone, PartialEq)]
pub struct GenomeReport {
    /// Reference genome name.
    pub name: String,
    /// Reference genome length in bases.
    pub genome_len: usize,
    /// Reference bases covered by aligned blocks.
    pub covered: usize,
    /// `covered / genome_len`.
    pub genome_fraction: f64,
    /// NGA50: aligned-block length at which blocks (sorted descending) cover
    /// half the reference; 0 if coverage never reaches 50%.
    pub nga50: usize,
    /// Longest aligned block on this genome.
    pub largest_block: usize,
    /// Planted rRNA regions of this genome that were recovered.
    pub rrna_recovered: usize,
    /// Planted rRNA regions of this genome.
    pub rrna_total: usize,
}

/// Whole-assembly evaluation results.
#[derive(Debug, Clone, PartialEq)]
pub struct AssemblyReport {
    /// Number of sequences in the assembly.
    pub num_seqs: usize,
    /// Total assembled bases.
    pub total_len: usize,
    /// Length of the longest assembly sequence.
    pub largest: usize,
    /// N50 of the assembly sequences.
    pub n50: usize,
    /// For each configured threshold, the total bases contained in assembly
    /// sequences at least that long (the "Length ≥ X" columns of Table I).
    pub length_at_thresholds: Vec<(usize, usize)>,
    /// Overall genome fraction (reference bases covered / total reference bases).
    pub genome_fraction: f64,
    /// Total misassembly events.
    pub misassemblies: usize,
    /// Planted rRNA regions recovered across all genomes.
    pub rrna_recovered: usize,
    /// Planted rRNA regions across all genomes.
    pub rrna_total: usize,
    /// Per-genome details (Figure 6 uses the `nga50` column).
    pub per_genome: Vec<GenomeReport>,
}

impl AssemblyReport {
    /// Bases in sequences at least `threshold` long, if that threshold was
    /// configured.
    pub fn length_at(&self, threshold: usize) -> Option<usize> {
        self.length_at_thresholds
            .iter()
            .find(|(t, _)| *t == threshold)
            .map(|(_, v)| *v)
    }

    /// Mean NGA50 across genomes with a non-zero NGA50.
    pub fn mean_nga50(&self) -> f64 {
        let vals: Vec<f64> = self
            .per_genome
            .iter()
            .filter(|g| g.nga50 > 0)
            .map(|g| g.nga50 as f64)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// A compact single-line summary used by harness output.
    pub fn summary_line(&self) -> String {
        format!(
            "seqs={} total={} n50={} genfrac={:.1}% msa={} rRNA={}/{}",
            self.num_seqs,
            self.total_len,
            self.n50,
            100.0 * self.genome_fraction,
            self.misassemblies,
            self.rrna_recovered,
            self.rrna_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AssemblyReport {
        AssemblyReport {
            num_seqs: 2,
            total_len: 1000,
            largest: 700,
            n50: 700,
            length_at_thresholds: vec![(500, 700), (1000, 0)],
            genome_fraction: 0.9,
            misassemblies: 1,
            rrna_recovered: 2,
            rrna_total: 3,
            per_genome: vec![
                GenomeReport {
                    name: "a".into(),
                    genome_len: 500,
                    covered: 450,
                    genome_fraction: 0.9,
                    nga50: 400,
                    largest_block: 400,
                    rrna_recovered: 1,
                    rrna_total: 1,
                },
                GenomeReport {
                    name: "b".into(),
                    genome_len: 500,
                    covered: 450,
                    genome_fraction: 0.9,
                    nga50: 0,
                    largest_block: 100,
                    rrna_recovered: 1,
                    rrna_total: 2,
                },
            ],
        }
    }

    #[test]
    fn length_at_lookup() {
        let r = report();
        assert_eq!(r.length_at(500), Some(700));
        assert_eq!(r.length_at(1000), Some(0));
        assert_eq!(r.length_at(123), None);
    }

    #[test]
    fn mean_nga50_ignores_zeroes() {
        let r = report();
        assert!((r.mean_nga50() - 400.0).abs() < 1e-12);
    }

    #[test]
    fn summary_line_mentions_key_numbers() {
        let line = report().summary_line();
        assert!(line.contains("msa=1"));
        assert!(line.contains("rRNA=2/3"));
        assert!(line.contains("90.0%"));
    }
}
