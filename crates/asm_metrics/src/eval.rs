//! Reference-based evaluation by unique k-mer anchoring.

use crate::report::{AssemblyReport, GenomeReport};
use kmers::{kmer_positions, Kmer};
use seqio::alphabet::revcomp;
use seqio::ReferenceSet;
use std::collections::HashMap;

/// Parameters of the evaluation.
#[derive(Debug, Clone)]
pub struct EvalParams {
    /// Anchor k-mer length (must be odd; anchors must be unique within the
    /// reference set to be used).
    pub anchor_k: usize,
    /// Minimum aligned-block length (in bases) to be counted.
    pub min_block: usize,
    /// Maximum allowed difference between the reference jump and the assembly
    /// jump of two adjacent blocks before the junction counts as a
    /// misassembly.
    pub max_gap_inconsistency: usize,
    /// Thresholds for the "bases in sequences ≥ X" contiguity columns.
    pub length_thresholds: Vec<usize>,
    /// Fraction of a planted rRNA region that must be covered for it to count
    /// as recovered.
    pub rrna_cover_fraction: f64,
}

impl Default for EvalParams {
    fn default() -> Self {
        EvalParams {
            anchor_k: 31,
            min_block: 100,
            max_gap_inconsistency: 500,
            length_thresholds: vec![1_000, 5_000, 10_000],
            rrna_cover_fraction: 0.8,
        }
    }
}

/// A maximal run of collinear anchors of one assembly sequence on one genome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    genome: usize,
    ref_start: usize,
    ref_end: usize,
    asm_start: usize,
    asm_end: usize,
    forward: bool,
}

impl Block {
    fn ref_len(&self) -> usize {
        self.ref_end - self.ref_start
    }
}

/// One occurrence of an anchor k-mer in one reference genome. `dup` marks
/// k-mers repeated *within* that genome (intra-genome repeats), which cannot
/// place a sequence and are skipped at query time. A k-mer occurring in
/// several genomes keeps one anchor per genome: metaQUAST evaluates the
/// assembly against every reference independently, so regions shared between
/// strains (or the conserved rRNA operon planted in every genome) must anchor
/// to each genome that carries them.
#[derive(Debug, Clone, Copy)]
struct Anchor {
    genome: usize,
    pos: usize,
    forward: bool,
    dup: bool,
}

/// Builds the per-genome anchor index over the references (canonical k-mer →
/// one location per genome; intra-genome duplicates are marked unusable).
fn build_anchor_index(refs: &ReferenceSet, k: usize) -> HashMap<Kmer, Vec<Anchor>> {
    let mut index: HashMap<Kmer, Vec<Anchor>> = HashMap::new();
    for (gi, genome) in refs.genomes.iter().enumerate() {
        for (pos, km) in kmer_positions(&genome.seq, k) {
            let (canon, was_rc) = km.canonical();
            let anchors = index.entry(canon).or_default();
            match anchors.iter_mut().find(|a| a.genome == gi) {
                Some(existing) => existing.dup = true,
                None => anchors.push(Anchor {
                    genome: gi,
                    pos,
                    forward: !was_rc,
                    dup: false,
                }),
            }
        }
    }
    index
}

/// Chains the anchors of one assembly sequence into collinear blocks, one
/// independent chain per reference genome (so a strain-merged consensus
/// produces a full-length block on *each* strain instead of fragmenting at
/// every allele switch).
fn blocks_of_sequence(
    seq: &[u8],
    index: &HashMap<Kmer, Vec<Anchor>>,
    params: &EvalParams,
) -> Vec<Block> {
    let k = params.anchor_k;
    let mut blocks: Vec<Block> = Vec::new();
    let mut open: HashMap<usize, Block> = HashMap::new();
    for (apos, km) in kmer_positions(seq, k) {
        let (canon, asm_rc) = km.canonical();
        let Some(anchors) = index.get(&canon) else {
            // Unknown k-mer: it does not break any chain, the chains simply
            // skip it (mirrors how aligners treat mismatches).
            continue;
        };
        for anchor in anchors.iter().filter(|a| !a.dup) {
            let rpos = anchor.pos;
            // Orientation of the assembly relative to the reference here.
            let forward = anchor.forward != asm_rc;
            let extends = open.get(&anchor.genome).map(|b| {
                if b.forward != forward {
                    return false;
                }
                // Collinear in reference space…
                let ref_ok = if forward {
                    rpos + k >= b.ref_end
                        && rpos + k - b.ref_end <= params.max_gap_inconsistency
                        && rpos >= b.ref_start
                } else {
                    b.ref_start >= rpos && b.ref_start - rpos <= params.max_gap_inconsistency
                };
                // …and advancing consistently with the assembly coordinate
                // (prevents one chain from silently spanning an unrelated
                // insert between two same-genome pieces).
                let asm_jump = (apos + k) as i64 - b.asm_end as i64;
                let ref_jump = if forward {
                    (rpos + k) as i64 - b.ref_end as i64
                } else {
                    b.ref_start as i64 - rpos as i64
                };
                ref_ok
                    && (asm_jump - ref_jump).unsigned_abs() as usize <= params.max_gap_inconsistency
            });
            match extends {
                Some(true) => {
                    let b = open.get_mut(&anchor.genome).expect("chain is open");
                    b.asm_end = apos + k;
                    if forward {
                        b.ref_end = b.ref_end.max(rpos + k);
                    } else {
                        b.ref_start = b.ref_start.min(rpos);
                    }
                }
                _ => {
                    let fresh = Block {
                        genome: anchor.genome,
                        ref_start: rpos,
                        ref_end: rpos + k,
                        asm_start: apos,
                        asm_end: apos + k,
                        forward,
                    };
                    if let Some(b) = open.insert(anchor.genome, fresh) {
                        if b.ref_len() >= params.min_block {
                            blocks.push(b);
                        }
                    }
                }
            }
        }
    }
    for (_, b) in open {
        if b.ref_len() >= params.min_block {
            blocks.push(b);
        }
    }
    // Genome breaks ties (strain-twin blocks share identical spans), keeping
    // the downstream tiling — and the misassembly count — deterministic
    // despite the HashMap flush above.
    blocks.sort_unstable_by_key(|b| (b.asm_start, b.asm_end, b.genome));
    blocks
}

/// Selects a non-redundant tiling of one sequence's blocks (largest blocks
/// first, discarding blocks mostly covered by an already-chosen one in
/// assembly coordinates) and counts the misassembly junctions between the
/// adjacent tiles. The tiling step keeps the per-genome chains of a
/// strain-collapsed consensus — which all describe the *same* assembly span —
/// from being miscounted as breakpoints.
fn misassemblies_in(blocks: &[Block], params: &EvalParams) -> usize {
    let mut by_len: Vec<&Block> = blocks.iter().collect();
    by_len.sort_unstable_by_key(|b| (std::cmp::Reverse(b.ref_len()), b.asm_start, b.genome));
    let mut tiling: Vec<&Block> = Vec::new();
    for b in by_len {
        let redundant = tiling.iter().any(|t| {
            let overlap = t
                .asm_end
                .min(b.asm_end)
                .saturating_sub(t.asm_start.max(b.asm_start));
            let shorter = (t.asm_end - t.asm_start).min(b.asm_end - b.asm_start);
            2 * overlap > shorter
        });
        if !redundant {
            tiling.push(b);
        }
    }
    tiling.sort_unstable_by_key(|b| (b.asm_start, b.asm_end));

    let consistent = |a: &Block, b: &Block| -> bool {
        if a.genome != b.genome || a.forward != b.forward {
            return false;
        }
        let asm_jump = b.asm_start as i64 - a.asm_end as i64;
        let ref_jump = if a.forward {
            b.ref_start as i64 - a.ref_end as i64
        } else {
            a.ref_start as i64 - b.ref_end as i64
        };
        (asm_jump - ref_jump).unsigned_abs() as usize <= params.max_gap_inconsistency
    };
    // A stand-in for one tile: a block of another genome covering (almost) the
    // same assembly span. Strain twins produce such pairs for every tile, and
    // the arbitrary tiling choice between them must not manufacture
    // cross-genome junctions metaQUAST (which aligns against each reference
    // independently) would never report.
    let alternates = |tile: &Block| -> Vec<&Block> {
        blocks
            .iter()
            .filter(|c| {
                let overlap = c
                    .asm_end
                    .min(tile.asm_end)
                    .saturating_sub(c.asm_start.max(tile.asm_start));
                let span = tile.asm_end - tile.asm_start;
                c.genome != tile.genome && 5 * overlap >= 4 * span
            })
            .collect()
    };

    let mut count = 0usize;
    for pair in tiling.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if consistent(a, b) {
            continue;
        }
        // Junction explainable by a single genome through an alternate of
        // either side? Then it is not a breakpoint.
        if alternates(a).iter().any(|alt| consistent(alt, b))
            || alternates(b).iter().any(|alt| consistent(a, alt))
        {
            continue;
        }
        count += 1;
    }
    count
}

/// Total bases covered by a set of (start, end) intervals after merging.
fn covered_bases(mut intervals: Vec<(usize, usize)>) -> usize {
    intervals.sort_unstable();
    let mut covered = 0usize;
    let mut cur: Option<(usize, usize)> = None;
    for (s, e) in intervals {
        match cur.as_mut() {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => {
                if let Some((cs, ce)) = cur.take() {
                    covered += ce - cs;
                }
                cur = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        covered += ce - cs;
    }
    covered
}

/// NGAx-style statistic: block length at which sorted blocks cover
/// `fraction` of `genome_len`; 0 if never reached.
fn nga(blocks_lens: &mut [usize], genome_len: usize, fraction: f64) -> usize {
    blocks_lens.sort_unstable_by(|a, b| b.cmp(a));
    let target = (genome_len as f64 * fraction).ceil() as usize;
    let mut acc = 0usize;
    for &l in blocks_lens.iter() {
        acc += l;
        if acc >= target {
            return l;
        }
    }
    0
}

/// One anchored block of a sequence, for [`debug_blocks`]:
/// `(genome, forward, asm_start, asm_end, ref_start, ref_end)`.
pub type BlockView = (usize, bool, usize, usize, usize, usize);

/// Debug view of the anchored blocks of each assembly sequence.
#[doc(hidden)]
pub fn debug_blocks(
    assembly: &[Vec<u8>],
    refs: &ReferenceSet,
    params: &EvalParams,
) -> Vec<Vec<BlockView>> {
    let index = build_anchor_index(refs, params.anchor_k);
    assembly
        .iter()
        .map(|seq| {
            blocks_of_sequence(seq, &index, params)
                .into_iter()
                .map(|b| {
                    (
                        b.genome,
                        b.forward,
                        b.asm_start,
                        b.asm_end,
                        b.ref_start,
                        b.ref_end,
                    )
                })
                .collect()
        })
        .collect()
}

/// Evaluates an assembly (a set of scaffold/contig sequences) against the
/// reference community.
pub fn evaluate(assembly: &[Vec<u8>], refs: &ReferenceSet, params: &EvalParams) -> AssemblyReport {
    assert!(params.anchor_k % 2 == 1, "anchor k must be odd");
    let index = build_anchor_index(refs, params.anchor_k);

    // --- Pure contiguity statistics -------------------------------------------
    let mut lens: Vec<usize> = assembly.iter().map(|s| s.len()).collect();
    lens.sort_unstable_by(|a, b| b.cmp(a));
    let total_len: usize = lens.iter().sum();
    let largest = lens.first().copied().unwrap_or(0);
    let n50 = {
        let mut acc = 0usize;
        let mut n50 = 0usize;
        for &l in &lens {
            acc += l;
            if 2 * acc >= total_len {
                n50 = l;
                break;
            }
        }
        n50
    };
    let length_at_thresholds: Vec<(usize, usize)> = params
        .length_thresholds
        .iter()
        .map(|&t| (t, lens.iter().filter(|&&l| l >= t).sum::<usize>()))
        .collect();

    // --- Anchored blocks -------------------------------------------------------
    let mut all_blocks: Vec<Block> = Vec::new();
    let mut misassemblies = 0usize;
    for seq in assembly {
        let blocks = blocks_of_sequence(seq, &index, params);
        // Also try the reverse complement when nothing anchored (a sequence
        // made entirely of reference-reverse material anchors fine either way
        // because anchors are canonical; this is just a safety net for very
        // short sequences).
        if blocks.is_empty() && seq.len() >= params.anchor_k {
            let rc = revcomp(seq);
            let rc_blocks = blocks_of_sequence(&rc, &index, params);
            misassemblies += misassemblies_in(&rc_blocks, params);
            all_blocks.extend(rc_blocks);
        } else {
            misassemblies += misassemblies_in(&blocks, params);
            all_blocks.extend(blocks);
        }
    }

    // --- Per-genome coverage, NGA50, rRNA recovery ----------------------------
    let mut per_genome = Vec::with_capacity(refs.len());
    let mut total_covered = 0usize;
    let mut rrna_recovered_total = 0usize;
    let mut rrna_total = 0usize;
    for (gi, genome) in refs.genomes.iter().enumerate() {
        let gblocks: Vec<&Block> = all_blocks.iter().filter(|b| b.genome == gi).collect();
        let covered = covered_bases(gblocks.iter().map(|b| (b.ref_start, b.ref_end)).collect());
        let mut lens: Vec<usize> = gblocks.iter().map(|b| b.ref_len()).collect();
        let nga50 = nga(&mut lens, genome.len(), 0.5);
        let largest_block = lens.first().copied().unwrap_or(0);
        let mut rrna_rec = 0usize;
        for &(rs, re) in &genome.rrna_regions {
            // Union, not sum: with per-genome anchoring several contigs can
            // produce overlapping blocks on the same region, and summing
            // would credit the same bases twice.
            let overlap = covered_bases(
                gblocks
                    .iter()
                    .map(|b| (b.ref_start.max(rs), b.ref_end.min(re)))
                    .filter(|(s, e)| e > s)
                    .collect(),
            );
            if (overlap as f64) >= params.rrna_cover_fraction * (re - rs) as f64 {
                rrna_rec += 1;
            }
        }
        rrna_recovered_total += rrna_rec;
        rrna_total += genome.rrna_regions.len();
        total_covered += covered;
        per_genome.push(GenomeReport {
            name: genome.name.clone(),
            genome_len: genome.len(),
            covered,
            genome_fraction: if genome.is_empty() {
                0.0
            } else {
                covered as f64 / genome.len() as f64
            },
            nga50,
            largest_block,
            rrna_recovered: rrna_rec,
            rrna_total: genome.rrna_regions.len(),
        });
    }
    let total_ref: usize = refs.total_bases();
    AssemblyReport {
        num_seqs: assembly.len(),
        total_len,
        largest,
        n50,
        length_at_thresholds,
        genome_fraction: if total_ref == 0 {
            0.0
        } else {
            total_covered as f64 / total_ref as f64
        },
        misassemblies,
        rrna_recovered: rrna_recovered_total,
        rrna_total,
        per_genome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use seqio::ReferenceGenome;

    fn random_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    fn two_genome_refs(seed: u64) -> (ReferenceSet, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut refs = ReferenceSet::new();
        let mut a = ReferenceGenome::new("a", random_seq(&mut rng, 4000));
        a.rrna_regions.push((1000, 1400));
        let b = ReferenceGenome::new("b", random_seq(&mut rng, 3000));
        refs.push(a);
        refs.push(b);
        (refs, rng)
    }

    fn small_params() -> EvalParams {
        EvalParams {
            min_block: 60,
            length_thresholds: vec![500, 1000],
            ..Default::default()
        }
    }

    #[test]
    fn perfect_assembly_scores_full_coverage_no_misassemblies() {
        let (refs, _) = two_genome_refs(1);
        let assembly: Vec<Vec<u8>> = refs.genomes.iter().map(|g| g.seq.clone()).collect();
        let report = evaluate(&assembly, &refs, &small_params());
        assert_eq!(report.num_seqs, 2);
        assert_eq!(report.total_len, 7000);
        assert!(report.genome_fraction > 0.99, "{}", report.genome_fraction);
        assert_eq!(report.misassemblies, 0);
        assert_eq!(report.rrna_recovered, 1);
        assert_eq!(report.rrna_total, 1);
        assert_eq!(report.per_genome[0].nga50, report.per_genome[0].genome_len);
        assert_eq!(report.length_at(1000), Some(7000));
    }

    #[test]
    fn reverse_complement_assembly_scores_the_same() {
        let (refs, _) = two_genome_refs(2);
        let assembly: Vec<Vec<u8>> = refs.genomes.iter().map(|g| revcomp(&g.seq)).collect();
        let report = evaluate(&assembly, &refs, &small_params());
        assert!(report.genome_fraction > 0.99);
        assert_eq!(report.misassemblies, 0);
    }

    #[test]
    fn fragmented_assembly_has_lower_nga50_but_full_coverage() {
        let (refs, _) = two_genome_refs(3);
        let mut assembly = Vec::new();
        for g in &refs.genomes {
            for chunk in g.seq.chunks(500) {
                assembly.push(chunk.to_vec());
            }
        }
        let report = evaluate(&assembly, &refs, &small_params());
        assert!(report.genome_fraction > 0.95);
        assert_eq!(report.misassemblies, 0);
        assert!(report.per_genome[0].nga50 <= 500);
        assert!(report.per_genome[0].nga50 > 0);
        assert!(report.n50 <= 500);
    }

    #[test]
    fn chimeric_scaffold_counts_a_misassembly() {
        let (refs, _) = two_genome_refs(4);
        // Join a piece of genome a with a piece of genome b.
        let mut chimera = refs.genomes[0].seq[..1500].to_vec();
        chimera.extend_from_slice(&refs.genomes[1].seq[1000..2500]);
        let report = evaluate(&[chimera], &refs, &small_params());
        assert_eq!(report.misassemblies, 1);
    }

    #[test]
    fn relocation_within_genome_counts_a_misassembly() {
        let (refs, _) = two_genome_refs(5);
        // Join two distant pieces of the same genome.
        let mut relocated = refs.genomes[0].seq[..800].to_vec();
        relocated.extend_from_slice(&refs.genomes[0].seq[3000..3800]);
        let report = evaluate(&[relocated], &refs, &small_params());
        assert_eq!(report.misassemblies, 1);
    }

    #[test]
    fn inversion_counts_a_misassembly() {
        let (refs, _) = two_genome_refs(6);
        let mut inv = refs.genomes[0].seq[..1000].to_vec();
        inv.extend_from_slice(&revcomp(&refs.genomes[0].seq[1000..2000]));
        let report = evaluate(&[inv], &refs, &small_params());
        assert!(report.misassemblies >= 1);
    }

    #[test]
    fn unrelated_sequence_contributes_nothing() {
        let (refs, mut rng) = two_genome_refs(7);
        let junk = random_seq(&mut rng, 2000);
        let report = evaluate(&[junk], &refs, &small_params());
        assert_eq!(report.genome_fraction, 0.0);
        assert_eq!(report.misassemblies, 0);
        assert_eq!(report.per_genome[0].nga50, 0);
        assert_eq!(report.total_len, 2000);
    }

    #[test]
    fn missing_genome_reduces_genome_fraction() {
        let (refs, _) = two_genome_refs(8);
        // Assemble only genome a.
        let assembly = vec![refs.genomes[0].seq.clone()];
        let report = evaluate(&assembly, &refs, &small_params());
        assert!(report.per_genome[0].genome_fraction > 0.99);
        assert_eq!(report.per_genome[1].genome_fraction, 0.0);
        let expected = 4000.0 / 7000.0;
        assert!((report.genome_fraction - expected).abs() < 0.02);
    }

    #[test]
    fn rrna_recovery_requires_sufficient_overlap() {
        let (refs, _) = two_genome_refs(9);
        // Cover only half of the planted region (1000..1400): 1000..1200.
        let partial = refs.genomes[0].seq[800..1200].to_vec();
        let report = evaluate(&[partial], &refs, &small_params());
        assert_eq!(report.rrna_recovered, 0);
        // Covering the full region recovers it.
        let full = refs.genomes[0].seq[900..1500].to_vec();
        let report2 = evaluate(&[full], &refs, &small_params());
        assert_eq!(report2.rrna_recovered, 1);
    }
}
