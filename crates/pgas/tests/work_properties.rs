//! Property-style tests of `DynamicBlocks`: for arbitrary pool sizes, block
//! sizes and team widths, every index is claimed exactly once and nothing is
//! claimed twice — the invariant the local-assembly stage depends on for
//! correctness (the paper's single-global-atomic work stealing, §II-G).

use pgas::{DynamicBlocks, Team};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[test]
fn all_blocks_claimed_exactly_once_across_randomised_configurations() {
    let mut rng = StdRng::seed_from_u64(20260728);
    for trial in 0..12 {
        let ranks = rng.gen_range(1..=8usize);
        let total = rng.gen_range(0..3000usize);
        let block = rng.gen_range(1..=64usize);
        let claims: Arc<Vec<AtomicU32>> = Arc::new((0..total).map(|_| AtomicU32::new(0)).collect());
        let team = Team::single_node(ranks);
        let claims2 = Arc::clone(&claims);
        let processed = team.run(move |ctx| {
            let blocks = ctx.share(|| DynamicBlocks::new(total, block));
            assert_eq!(blocks.total(), total);
            blocks.drive(ctx, |i| {
                claims2[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        // Exactly-once, checked two independent ways: per-index claim counts
        // and the sum of per-rank processed counts.
        assert_eq!(
            processed.iter().sum::<usize>(),
            total,
            "trial {trial}: ranks={ranks} total={total} block={block}"
        );
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "trial {trial}: index {i} claimed {} times (ranks={ranks} block={block})",
                c.load(Ordering::Relaxed)
            );
        }
    }
}

#[test]
fn uneven_tail_block_is_not_overrun() {
    // total not divisible by block: the final partial block must stop at
    // `total` and later grabs must return None on every rank.
    let team = Team::single_node(3);
    let ranges = team.run(|ctx| {
        let blocks = ctx.share(|| DynamicBlocks::new(100, 32));
        let mut got = Vec::new();
        let mut first = true;
        while let Some(r) = blocks.next_block(ctx, first) {
            first = false;
            assert!(r.end <= 100, "block {r:?} exceeds the pool");
            got.push(r);
        }
        got
    });
    let mut all: Vec<usize> = ranges.into_iter().flatten().flatten().collect();
    all.sort_unstable();
    assert_eq!(all, (0..100).collect::<Vec<_>>());
}

#[test]
fn steals_are_recorded_for_non_first_grabs() {
    let team = Team::single_node(4);
    team.reset_stats();
    team.run(|ctx| {
        let blocks = ctx.share(|| DynamicBlocks::new(256, 4));
        blocks.drive(ctx, |_| {});
    });
    let snap = team.stats_total();
    // 64 grabs total, at most one "own" first grab per rank.
    assert!(
        snap.steals >= 64 - 4,
        "expected most grabs to count as steals, got {}",
        snap.steals
    );
}
