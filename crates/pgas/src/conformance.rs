//! Runtime collective-conformance checking (MUST-style collective matching).
//!
//! Everything in this runtime — and in the UPC programs it models — rests on
//! one invariant: **every rank issues the same sequence of collectives with
//! compatible payloads**. A single rank-skewed barrier or a mismatched
//! exchange element type does not fail at the offending line; it deadlocks or
//! corrupts data several stages later, where the symptom names no culprit.
//!
//! This module turns that class of bug into an immediate, located failure.
//! Each collective entry point ([`crate::Ctx::barrier`], [`crate::Ctx::share`],
//! the reductions, [`crate::Ctx::exchange`]/[`crate::Ctx::exchange_map`] and the three
//! aggregator `finish` calls) records an [`OpRecord`] — op kind, user call
//! site (captured through `#[track_caller]`, see the conformance-tag
//! convention in the README), payload type name and element size — into a
//! per-rank trace. The **last rank to arrive at each barrier** cross-checks
//! all traces while the others are parked in the rendezvous: any divergence
//! panics with the diverging rank, op index, both op descriptors and both
//! call sites.
//!
//! Two companion checks ride on the same state:
//!
//! * **local-phase guarding** — while a rank holds a `local_view` over its
//!   shard of a distributed map, one-sided probes from other ranks against
//!   that shard are flagged ([`crate::Ctx::check_one_sided_target`]), since the
//!   view's snapshot semantics (and lock order) forbid concurrent remote
//!   traffic;
//! * **schedule digests** — every rank folds each op descriptor into a
//!   per-rank FNV-1a digest *unconditionally* (even with checking off, the
//!   cost is a short hash per collective, invisible next to a barrier).
//!   Checkpoint manifests stamp `(op count, digest)` for every writer rank,
//!   so resume can refuse a checkpoint written by a run whose collective
//!   schedule had already diverged.
//!
//! Checking defaults to **on under `cfg(debug_assertions)`** and off in
//! release; `MHM_CONFORMANCE=1|0` overrides, and
//! `Team::set_conformance_checking` toggles per team (outside SPMD regions).
//!
//! What is deliberately **not** recorded: mid-phase aggregator auto-flushes.
//! Their timing is data-dependent (a rank flushes when *its* buffer fills),
//! so they legitimately diverge across ranks; only the collective rendezvous
//! points (`finish`, `exchange`, barriers) are schedule-relevant.

use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

/// FNV-1a offset basis; per-rank digests start here.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The kind of collective operation a rank entered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// `Ctx::barrier`.
    Barrier,
    /// `Ctx::share` / `Ctx::broadcast`.
    Share,
    /// A `u64` all-reduce (`allreduce_{sum,max,min}_u64`, `allreduce_any`).
    ReduceU64,
    /// An `f64` all-reduce (`allreduce_{sum,max}_f64`).
    ReduceF64,
    /// `Ctx::exchange` / `Ctx::exchange_map`'s transport phases.
    Exchange,
    /// `Aggregator::finish`.
    AggFinish,
    /// `BlobAggregator::finish`.
    BlobFinish,
    /// `RpcAggregator::finish` (including via `Ctx::exchange_map`).
    RpcFinish,
}

impl OpKind {
    /// Stable lowercase name, used in digests and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Barrier => "barrier",
            OpKind::Share => "share",
            OpKind::ReduceU64 => "reduce_u64",
            OpKind::ReduceF64 => "reduce_f64",
            OpKind::Exchange => "exchange",
            OpKind::AggFinish => "agg_finish",
            OpKind::BlobFinish => "blob_finish",
            OpKind::RpcFinish => "rpc_finish",
        }
    }
}

/// One collective entry as observed by one rank.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpRecord {
    /// What kind of collective.
    pub kind: OpKind,
    /// The outermost user call site (via `#[track_caller]` chaining).
    pub site: &'static Location<'static>,
    /// `type_name` of the payload element (empty for pure barriers).
    pub payload: &'static str,
    /// `size_of` the payload element in bytes (0 for pure barriers).
    pub elem_size: usize,
}

impl fmt::Display for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.payload.is_empty() {
            write!(f, "{} @ {}", self.kind.name(), self.site)
        } else {
            write!(
                f,
                "{}<{}> ({} B/elem) @ {}",
                self.kind.name(),
                self.payload,
                self.elem_size,
                self.site
            )
        }
    }
}

/// Per-team conformance state: traces, digests and local-phase registries,
/// one slot per rank.
pub(crate) struct ConformanceState {
    enabled: AtomicBool,
    /// Ops since the last *verified* barrier, per rank. Cleared by the
    /// cross-check on every successful rendezvous.
    traces: Vec<Mutex<Vec<OpRecord>>>,
    /// Lifetime count of collective ops per rank (never reset).
    ops: Vec<AtomicU64>,
    /// Running FNV-1a digest of each rank's op descriptors (never reset).
    digests: Vec<AtomicU64>,
    /// Active local phases per rank: `(token, site where the view was taken)`.
    local_phases: Vec<Mutex<Vec<(usize, &'static Location<'static>)>>>,
}

impl ConformanceState {
    pub(crate) fn new(ranks: usize) -> Self {
        let enabled = match std::env::var("MHM_CONFORMANCE").ok().as_deref() {
            Some("1") | Some("on") | Some("true") => true,
            Some("0") | Some("off") | Some("false") => false,
            _ => cfg!(debug_assertions),
        };
        ConformanceState {
            enabled: AtomicBool::new(enabled),
            traces: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
            ops: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            digests: (0..ranks).map(|_| AtomicU64::new(FNV_OFFSET)).collect(),
            local_phases: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// `(lifetime op count, schedule digest)` for one rank. Folded on every
    /// collective regardless of the enabled flag, so release-mode checkpoint
    /// stamps are still meaningful.
    pub(crate) fn stamp(&self, rank: usize) -> (u64, u64) {
        (
            self.ops[rank].load(Ordering::Relaxed),
            self.digests[rank].load(Ordering::Relaxed),
        )
    }

    /// Records one collective entry for `rank`. The digest always advances;
    /// the trace is only kept while checking is enabled.
    pub(crate) fn record(&self, rank: usize, rec: OpRecord) {
        let mut d = self.digests[rank].load(Ordering::Relaxed);
        d = fold(d, rec.kind.name().as_bytes());
        d = fold(d, rec.site.file().as_bytes());
        d = fold(d, &rec.site.line().to_le_bytes());
        d = fold(d, &rec.site.column().to_le_bytes());
        d = fold(d, rec.payload.as_bytes());
        d = fold(d, &(rec.elem_size as u64).to_le_bytes());
        // Only this rank's thread writes this slot; relaxed is enough (the
        // barrier rendezvous orders cross-rank reads).
        self.digests[rank].store(d, Ordering::Relaxed);
        self.ops[rank].fetch_add(1, Ordering::Relaxed);
        if self.enabled() {
            self.traces[rank].lock().push(rec);
        }
    }

    /// Cross-checks all ranks' traces. Runs on the **last arriver** at a
    /// barrier, while every other rank is parked in the rendezvous (so no
    /// trace lock is contended). On success all traces are cleared; on
    /// mismatch returns a diagnostic naming rank, op index and both call
    /// sites. `barriers` is the per-rank barrier-entry count, included when
    /// skewed to show which rank ran ahead.
    pub(crate) fn cross_check(&self, barriers: &[u64]) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        // Fast path: the lifetime digests fold every op descriptor, so equal
        // (ops, digest) pairs across all ranks mean the entire histories
        // agree — no need to walk the traces. The expensive diff below only
        // runs to *build the diagnostic* once a divergence is already known.
        // (Every arrived rank stored its digest before entering the barrier
        // lock the caller holds, so relaxed loads observe current values.)
        let first = self.stamp(0);
        if (1..self.traces.len()).all(|r| self.stamp(r) == first) {
            for t in &self.traces {
                t.lock().clear();
            }
            return Ok(());
        }
        let guards: Vec<_> = self.traces.iter().map(|t| t.lock()).collect();
        let mut err = None;
        'scan: for r in 1..guards.len() {
            let (reference, trace) = (&*guards[0], &*guards[r]);
            let common = reference.len().min(trace.len());
            for i in 0..common {
                if reference[i] != trace[i] {
                    err = Some(mismatch_msg(
                        r,
                        i,
                        Some(&reference[i]),
                        Some(&trace[i]),
                        barriers,
                    ));
                    break 'scan;
                }
            }
            if reference.len() != trace.len() {
                err = Some(mismatch_msg(
                    r,
                    common,
                    reference.get(common),
                    trace.get(common),
                    barriers,
                ));
                break 'scan;
            }
        }
        match err {
            Some(msg) => Err(msg),
            // The digests disagree but the kept traces do not explain it:
            // the schedules must have diverged before checking was enabled
            // (the traces only cover ops recorded since then).
            None => Err(format!(
                "collective conformance violation at barrier rendezvous:\n  \
                 lifetime op counts/digests diverge between ranks ({:?}) but the \
                 divergence predates the point where checking was enabled",
                (0..guards.len()).map(|r| self.stamp(r)).collect::<Vec<_>>()
            )),
        }
    }

    /// Registers a local phase (e.g. a `DistMap::local_view`) held by `rank`.
    /// `token` identifies the protected object (the map's address, identical
    /// across ranks because the map is `Arc`-shared).
    pub(crate) fn begin_local_phase(
        &self,
        rank: usize,
        token: usize,
        site: &'static Location<'static>,
    ) {
        self.local_phases[rank].lock().push((token, site));
    }

    /// Unregisters the most recent phase for `token` on `rank`.
    pub(crate) fn end_local_phase(&self, rank: usize, token: usize) {
        let mut phases = self.local_phases[rank].lock();
        if let Some(pos) = phases.iter().rposition(|&(t, _)| t == token) {
            phases.remove(pos);
        }
    }

    /// If `rank` currently holds a local phase for `token`, returns the site
    /// where the phase began.
    pub(crate) fn local_phase_site(
        &self,
        rank: usize,
        token: usize,
    ) -> Option<&'static Location<'static>> {
        self.local_phases[rank]
            .lock()
            .iter()
            .rev()
            .find(|&&(t, _)| t == token)
            .map(|&(_, site)| site)
    }
}

fn fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Field separator so ("ab","c") and ("a","bc") digest differently.
    h ^= 0xff;
    h.wrapping_mul(FNV_PRIME)
}

fn mismatch_msg(
    rank: usize,
    index: usize,
    expected: Option<&OpRecord>,
    actual: Option<&OpRecord>,
    barriers: &[u64],
) -> String {
    let describe = |op: Option<&OpRecord>| match op {
        Some(op) => format!("{op}"),
        None => "<no collective — rank went straight to the barrier>".to_string(),
    };
    let mut msg = format!(
        "collective conformance violation at barrier rendezvous:\n  \
         op {index} since the last verified barrier diverges between ranks:\n  \
         rank 0    issued: {}\n  \
         rank {rank:<4} issued: {}",
        describe(expected),
        describe(actual),
    );
    if barriers.windows(2).any(|w| w[0] != w[1]) {
        msg.push_str(&format!(
            "\n  barrier entries per rank are skewed: {barriers:?}"
        ));
    }
    msg.push_str("\n  every rank must issue the same collective sequence with compatible payloads");
    msg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: OpKind, payload: &'static str, elem_size: usize) -> OpRecord {
        OpRecord {
            kind,
            site: Location::caller(),
            payload,
            elem_size,
        }
    }

    #[test]
    fn matching_traces_pass_and_clear() {
        let st = ConformanceState::new(2);
        st.set_enabled(true);
        let r = rec(OpKind::Exchange, "u64", 8);
        st.record(0, r);
        st.record(1, r);
        assert!(st.cross_check(&[1, 1]).is_ok());
        st.record(0, r);
        st.record(1, r);
        assert!(
            st.cross_check(&[2, 2]).is_ok(),
            "traces must reset between barriers"
        );
    }

    #[test]
    fn payload_shape_mismatch_is_reported_with_both_descriptors() {
        let st = ConformanceState::new(2);
        st.set_enabled(true);
        st.record(0, rec(OpKind::Exchange, "u64", 8));
        st.record(1, rec(OpKind::Exchange, "u32", 4));
        let msg = st.cross_check(&[1, 1]).unwrap_err();
        assert!(msg.contains("exchange<u64> (8 B/elem)"), "{msg}");
        assert!(msg.contains("exchange<u32> (4 B/elem)"), "{msg}");
        assert!(msg.contains("rank 1"), "{msg}");
    }

    #[test]
    fn missing_op_is_reported_with_skewed_barrier_counts() {
        let st = ConformanceState::new(2);
        st.set_enabled(true);
        st.record(0, rec(OpKind::Share, "f64", 8));
        let msg = st.cross_check(&[3, 2]).unwrap_err();
        assert!(msg.contains("no collective"), "{msg}");
        assert!(msg.contains("[3, 2]"), "{msg}");
    }

    #[test]
    fn digests_advance_even_when_checking_is_disabled() {
        let st = ConformanceState::new(1);
        st.set_enabled(false);
        let before = st.stamp(0);
        st.record(0, rec(OpKind::Barrier, "", 0));
        let after = st.stamp(0);
        assert_eq!(after.0, before.0 + 1);
        assert_ne!(after.1, before.1);
    }

    #[test]
    fn local_phase_registry_tracks_nested_tokens() {
        let st = ConformanceState::new(2);
        let site = Location::caller();
        st.begin_local_phase(1, 0xAB, site);
        assert!(st.local_phase_site(1, 0xAB).is_some());
        assert!(st.local_phase_site(0, 0xAB).is_none());
        assert!(st.local_phase_site(1, 0xCD).is_none());
        st.end_local_phase(1, 0xAB);
        assert!(st.local_phase_site(1, 0xAB).is_none());
    }
}
