//! All-to-all exchange and aggregated one-sided message buffers.
//!
//! The dominant communication pattern in MetaHipMer is "every rank produces
//! items destined for owner ranks determined by a hash, buffers them, and
//! ships them in large aggregated messages" (use case 1 of §II-A). The
//! [`Aggregator`] reproduces that pattern: items are buffered per destination
//! and flushed either when a buffer fills (modelling the asynchronous
//! aggregated stores) or at the end of the phase; the receiving rank drains
//! its inbox after a barrier.

use crate::team::Ctx;
use parking_lot::Mutex;
use std::sync::Arc;

/// Shared mailboxes for a typed all-to-all exchange.
pub struct AllToAll<T: Send> {
    inboxes: Vec<Mutex<Vec<T>>>,
}

impl<T: Send> AllToAll<T> {
    /// Creates mailboxes for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        AllToAll {
            inboxes: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Deposits a batch of items into `dest`'s inbox, recording one aggregated
    /// message in the caller's statistics.
    pub fn send_batch(&self, ctx: &Ctx, dest: usize, mut items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        ctx.record_message(dest, items.len() * std::mem::size_of::<T>());
        self.inboxes[dest].lock().append(&mut items);
    }

    /// Drains and returns the calling rank's inbox. Call only after a barrier
    /// that guarantees all senders have flushed.
    pub fn take_inbox(&self, ctx: &Ctx) -> Vec<T> {
        std::mem::take(&mut *self.inboxes[ctx.rank()].lock())
    }
}

impl<'t> Ctx<'t> {
    /// Collective all-to-all exchange: `outgoing[d]` is the batch destined for
    /// rank `d`; the return value is everything other ranks destined for this
    /// rank. Must be called by every rank.
    pub fn exchange<T>(&self, outgoing: Vec<Vec<T>>) -> Vec<T>
    where
        T: Send + Sync + 'static,
    {
        assert_eq!(
            outgoing.len(),
            self.ranks(),
            "exchange requires one outgoing batch per rank"
        );
        let a2a: Arc<AllToAll<T>> = self.share(|| AllToAll::new(self.ranks()));
        for (dest, batch) in outgoing.into_iter().enumerate() {
            a2a.send_batch(self, dest, batch);
        }
        self.barrier();
        let mine = a2a.take_inbox(self);
        self.barrier();
        mine
    }
}

/// A per-rank aggregating sender: the software analogue of UPC's dynamically
/// aggregated fine-grained stores.
///
/// Construct collectively with [`Aggregator::new`], push items with
/// [`Aggregator::push`] (buffers flush automatically when they reach the
/// configured batch size), and terminate the phase with
/// [`Aggregator::finish`], which flushes the remainder, synchronises, and
/// returns everything destined for the calling rank.
pub struct Aggregator<'c, 't, T: Send + Sync + 'static> {
    ctx: &'c Ctx<'t>,
    a2a: Arc<AllToAll<T>>,
    bufs: Vec<Vec<T>>,
    batch: usize,
}

impl<'c, 't, T: Send + Sync + 'static> Aggregator<'c, 't, T> {
    /// Collectively creates an aggregator with the given per-destination batch
    /// size (the number of items accumulated before a flush).
    pub fn new(ctx: &'c Ctx<'t>, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let a2a = ctx.share(|| AllToAll::new(ctx.ranks()));
        Aggregator {
            ctx,
            a2a,
            bufs: (0..ctx.ranks())
                .map(|_| Vec::with_capacity(batch))
                .collect(),
            batch,
        }
    }

    /// Buffers one item for `dest`, flushing that destination's buffer if it
    /// reached the batch size.
    pub fn push(&mut self, dest: usize, item: T) {
        self.bufs[dest].push(item);
        if self.bufs[dest].len() >= self.batch {
            let full = std::mem::replace(&mut self.bufs[dest], Vec::with_capacity(self.batch));
            self.a2a.send_batch(self.ctx, dest, full);
        }
    }

    /// Flushes every partially filled buffer without finishing the phase.
    pub fn flush(&mut self) {
        for dest in 0..self.bufs.len() {
            if !self.bufs[dest].is_empty() {
                let full = std::mem::take(&mut self.bufs[dest]);
                self.a2a.send_batch(self.ctx, dest, full);
            }
        }
    }

    /// Flushes, synchronises all ranks, and returns the items destined for the
    /// calling rank. Collective.
    pub fn finish(mut self) -> Vec<T> {
        self.flush();
        self.ctx.barrier();
        let mine = self.a2a.take_inbox(self.ctx);
        self.ctx.barrier();
        mine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;
    use crate::topology::Topology;

    #[test]
    fn exchange_routes_items_to_owners() {
        let team = Team::single_node(4);
        let received = team.run(|ctx| {
            let n = ctx.ranks();
            // Rank r sends value 100*r + d to destination d.
            let outgoing: Vec<Vec<usize>> = (0..n).map(|d| vec![100 * ctx.rank() + d]).collect();
            let mut got = ctx.exchange(outgoing);
            got.sort();
            got
        });
        for (d, got) in received.iter().enumerate() {
            let expect: Vec<usize> = (0..4).map(|r| 100 * r + d).collect();
            assert_eq!(got, &expect);
        }
    }

    #[test]
    fn exchange_empty_batches_ok() {
        let team = Team::single_node(3);
        let received = team.run(|ctx| ctx.exchange::<u64>(vec![vec![]; ctx.ranks()]));
        assert!(received.iter().all(|v| v.is_empty()));
        assert_eq!(team.stats_total().msgs_sent, 0);
    }

    #[test]
    fn aggregator_delivers_everything_once() {
        let team = Team::single_node(4);
        let per_rank_items = 100usize;
        let received = team.run(|ctx| {
            let n = ctx.ranks();
            let mut agg: Aggregator<(usize, usize)> = Aggregator::new(ctx, 7);
            for i in 0..per_rank_items {
                let dest = i % n;
                agg.push(dest, (ctx.rank(), i));
            }
            let mut got = agg.finish();
            got.sort();
            got
        });
        let total: usize = received.iter().map(|v| v.len()).sum();
        assert_eq!(total, 4 * per_rank_items);
        // Every item lands at the destination its index selects.
        for (dest, items) in received.iter().enumerate() {
            assert!(items.iter().all(|&(_, i)| i % 4 == dest));
        }
    }

    #[test]
    fn aggregation_reduces_message_count() {
        let items = 1000usize;
        let count_msgs = |batch: usize| {
            let team = Team::new(Topology::new(4, 1));
            team.run(|ctx| {
                let mut agg: Aggregator<u64> = Aggregator::new(ctx, batch);
                for i in 0..items {
                    agg.push(i % ctx.ranks(), i as u64);
                }
                let _ = agg.finish();
            });
            team.stats_total().msgs_sent
        };
        let fine = count_msgs(1);
        let coarse = count_msgs(128);
        assert!(
            coarse * 10 < fine,
            "aggregated messaging should send far fewer messages: fine={fine} coarse={coarse}"
        );
    }
}
