//! All-to-all exchange, aggregated one-sided message buffers, and the
//! aggregated request–response (RPC) layer.
//!
//! The dominant communication pattern in MetaHipMer is "every rank produces
//! items destined for owner ranks determined by a hash, buffers them, and
//! ships them in large aggregated messages" (use case 1 of §II-A). The
//! [`Aggregator`] reproduces that pattern: items are buffered per destination
//! and flushed either when a buffer fills (modelling the asynchronous
//! aggregated stores) or at the end of the phase; the receiving rank drains
//! its inbox after a barrier.
//!
//! The paper aggregates *lookups* the same way (use case 3): ranks buffer
//! hash-table requests per owner, ship them in large messages, the owners
//! answer from their local shards, and the responses travel back in a second
//! aggregated all-to-all. [`RpcAggregator`] (and the [`Ctx::exchange_map`]
//! convenience built on it) reproduces that request–response round trip; the
//! request legs are accounted like any aggregated message, the response legs
//! additionally feed `CommStats::rpc_resp_bytes`, and every completed round
//! trip bumps `CommStats::rpc_round_trips`.
//!
//! # Mailbox reuse
//!
//! The mailbox arrays behind all of these collectives are kept in per-team
//! [leased reusable slots](crate::team::Team::reusable_slot), so repeated
//! phases do not pay for a fresh shared allocation plus a serialising `share`
//! round each time; collectives of the same item type that are live at the
//! same time lease *distinct* pooled instances, so they cannot alias. The
//! invariant that makes reuse across phases sound: **between an inbox drain
//! and any later phase's first deposit into the same mailbox there is always
//! a barrier every rank participates in.** Concretely, the trailing barrier
//! in [`Aggregator::finish`] and in [`Ctx::exchange`] is *not* redundant —
//! without it a fast rank could start the next phase and deposit items into
//! an inbox its owner has not yet drained, and the owner's late drain would
//! swallow them. (`RpcAggregator::finish` needs no trailing barrier; see the
//! reasoning where its drains happen.)
//!
//! # Two-level (node-leader) routing
//!
//! On a multi-node topology the paper's machines pay very different costs for
//! on-node and off-node transfers, and HipMer-style aggregation therefore
//! routes hierarchically: instead of every rank sending one message per
//! remote *rank*, the ranks of a node combine their traffic so that only one
//! message per remote *node* crosses the interconnect. When
//! [`Team::set_hierarchical_exchange`](crate::team::Team::set_hierarchical_exchange)
//! is on, every aggregated collective in this module routes its off-node
//! batches through a node-leader router (`NodeRouter`):
//!
//! 1. **gather** — a rank's flushed batch for an off-node destination is
//!    deposited at its own node leader (accounted as an on-node message,
//!    unless the rank *is* the leader);
//! 2. **ship** — after a barrier, each leader combines everything addressed
//!    to the same destination node and sends it as **one** off-node message
//!    per destination node (the payload bytes are unchanged — exactly the
//!    sum of the gathered batches);
//! 3. **scatter** — after a second barrier, the receiving leader deposits
//!    each packet into the final owner's ordinary inbox (an on-node message,
//!    unless the owner is the leader itself).
//!
//! On-node destinations bypass the router entirely and use the same direct
//! deposit as the flat path. Off-node *bytes* are identical in both modes
//! (each payload crosses the interconnect exactly once either way); the win
//! is the off-node *message* count, which drops by up to a factor of
//! `ranks_per_node` per direction. The extra gather/scatter legs appear,
//! correctly, as additional on-node traffic.
//!
//! The router's two barriers slot into the mailbox-reuse protocol above: the
//! gather inbox is drained by leaders strictly between the router's two
//! barriers, the ship inbox strictly between the second router barrier and
//! the caller's own pre-drain barrier, and no rank can reach a later phase's
//! first deposit without passing the caller's phase-final barrier — so every
//! drain is still separated from the next phase's deposits by a barrier all
//! ranks participate in.

use crate::conformance::OpKind;
use crate::team::{Ctx, SlotLease};
use parking_lot::Mutex;
use std::panic::Location;

/// Shared mailboxes for a typed all-to-all exchange.
pub struct AllToAll<T: Send> {
    inboxes: Vec<Mutex<Vec<T>>>,
}

impl<T: Send> AllToAll<T> {
    /// Creates mailboxes for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        AllToAll {
            inboxes: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Deposits a batch of items into `dest`'s inbox, recording one aggregated
    /// message in the caller's statistics.
    pub fn send_batch(&self, ctx: &Ctx, dest: usize, mut items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        ctx.record_message(dest, items.len() * std::mem::size_of::<T>());
        mhm_sched::yield_point("pgas::mailbox::deposit");
        self.inboxes[dest].lock().append(&mut items);
    }

    /// Drains and returns the calling rank's inbox. Call only after a barrier
    /// that guarantees all senders have flushed.
    pub fn take_inbox(&self, ctx: &Ctx) -> Vec<T> {
        mhm_sched::yield_point("pgas::mailbox::drain");
        std::mem::take(&mut *self.inboxes[ctx.rank()].lock())
    }

    /// Raw deposit into `dest`'s inbox with **no** accounting: the two-level
    /// router records each transport leg itself, so the final hand-off must
    /// not be double-counted.
    fn deposit(&self, dest: usize, mut items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        mhm_sched::yield_point("pgas::mailbox::deposit_raw");
        self.inboxes[dest].lock().append(&mut items);
    }
}

/// One rank's flushed batch for a single final destination rank, travelling
/// through the two-level (node-leader) exchange.
struct NodePacket<T> {
    /// Final owner rank.
    dest: u32,
    /// Accounted payload bytes of `items`: exact blob length for byte
    /// records, `len * size_of::<T>()` for fixed-size items — exactly what
    /// the flat path would have recorded for the same batch.
    bytes: usize,
    items: Vec<T>,
}

/// The two-level router behind every aggregated collective when hierarchical
/// exchange is enabled: gather at the source node's leader, ship one combined
/// message per destination node, scatter on-node to the final owners. See the
/// module docs for the protocol and its barrier/reuse reasoning.
struct NodeRouter<T: Send + Sync + 'static> {
    gather: SlotLease<AllToAll<NodePacket<T>>>,
    ship: SlotLease<AllToAll<NodePacket<T>>>,
}

impl<T: Send + Sync + 'static> NodeRouter<T> {
    fn new(ctx: &Ctx) -> Self {
        NodeRouter {
            gather: ctx.mailboxes(),
            ship: ctx.mailboxes(),
        }
    }

    /// Routes one flushed batch for the **off-node** rank `dest` into the
    /// two-level path: the packet is deposited at this node's leader, as an
    /// on-node message unless this rank *is* the leader.
    fn send_remote(&self, ctx: &Ctx, dest: usize, items: Vec<T>, bytes: usize) {
        if items.is_empty() {
            return;
        }
        debug_assert!(
            !ctx.topology().same_node(ctx.rank(), dest),
            "on-node batches take the direct path"
        );
        let leader = ctx.topology().leader_of(ctx.rank());
        if leader != ctx.rank() {
            ctx.record_message(leader, bytes);
        }
        self.gather.deposit(
            leader,
            vec![NodePacket {
                dest: dest as u32,
                bytes,
                items,
            }],
        );
    }

    /// Collective: completes the gather → ship → scatter protocol, leaving
    /// every routed batch in the final owner's inbox of `direct`. The caller
    /// must follow with its ordinary pre-drain barrier (which doubles as the
    /// publication point for the scattered items); no trailing barrier is
    /// needed here — see the module docs.
    #[track_caller]
    fn deliver(self, ctx: &Ctx, direct: &AllToAll<T>) {
        let topo = ctx.topology();
        // Every rank's `send_remote` deposits are visible after this barrier.
        ctx.barrier();
        if topo.is_leader(ctx.rank()) {
            // Ship: one combined off-node message per destination node.
            let mut per_node: Vec<Vec<NodePacket<T>>> =
                (0..topo.nodes()).map(|_| Vec::new()).collect();
            for packet in self.gather.take_inbox(ctx) {
                per_node[topo.node_of(packet.dest as usize)].push(packet);
            }
            for (node, packets) in per_node.into_iter().enumerate() {
                if packets.is_empty() {
                    continue;
                }
                let bytes: usize = packets.iter().map(|p| p.bytes).sum();
                let dest_leader = topo.leader_of_node(node);
                ctx.record_message(dest_leader, bytes);
                self.ship.deposit(dest_leader, packets);
            }
        }
        // Every leader's ship deposits are visible after this barrier.
        ctx.barrier();
        if topo.is_leader(ctx.rank()) {
            // Scatter: hand each packet to its final owner on-node.
            for packet in self.ship.take_inbox(ctx) {
                let dest = packet.dest as usize;
                if dest != ctx.rank() {
                    ctx.record_message(dest, packet.bytes);
                }
                direct.deposit(dest, packet.items);
            }
        }
    }
}

impl<'t> Ctx<'t> {
    /// Leases the team's reusable mailbox array for item type `T` (see the
    /// module docs for the reuse protocol).
    fn mailboxes<T: Send + Sync + 'static>(&self) -> SlotLease<AllToAll<T>> {
        let ranks = self.ranks();
        self.team().reusable_slot(|| AllToAll::<T>::new(ranks))
    }

    /// True when aggregated sends should take the node-leader path: the team
    /// flag is on *and* the topology actually has more than one node. On a
    /// single node every destination is local, the router could never carry a
    /// packet, and its extra barriers would buy nothing — so single-node
    /// teams behave identically in both modes.
    fn node_routing(&self) -> bool {
        self.hierarchical_exchange() && self.topology().nodes() > 1
    }

    /// Collective all-to-all exchange: `outgoing[d]` is the batch destined for
    /// rank `d`; the return value is everything other ranks destined for this
    /// rank. Must be called by every rank.
    #[track_caller]
    pub fn exchange<T>(&self, outgoing: Vec<Vec<T>>) -> Vec<T>
    where
        T: Send + Sync + 'static,
    {
        assert_eq!(
            outgoing.len(),
            self.ranks(),
            "exchange requires one outgoing batch per rank"
        );
        self.record_collective(
            OpKind::Exchange,
            Location::caller(),
            std::any::type_name::<T>(),
            std::mem::size_of::<T>(),
        );
        let a2a: SlotLease<AllToAll<T>> = self.mailboxes();
        let router = self.node_routing().then(|| NodeRouter::new(self));
        for (dest, batch) in outgoing.into_iter().enumerate() {
            match &router {
                Some(r) if !self.topology().same_node(self.rank(), dest) => {
                    let bytes = batch.len() * std::mem::size_of::<T>();
                    r.send_remote(self, dest, batch, bytes);
                }
                _ => a2a.send_batch(self, dest, batch),
            }
        }
        if let Some(r) = router {
            r.deliver(self, &a2a);
        }
        self.barrier();
        let mine = a2a.take_inbox(self);
        // Mailboxes are reused across phases: nobody may leave before every
        // rank has drained, or the next phase's sends could be swallowed by
        // this phase's drain.
        self.barrier();
        mine
    }

    /// Collective batched request–response exchange: routes every
    /// `(owner, request)` to its owner rank in aggregated messages of at most
    /// `batch` requests, applies `handler` on the owning rank, and returns the
    /// responses in request order. Convenience wrapper over
    /// [`RpcAggregator`]; must be called by every rank (an empty request list
    /// is fine).
    #[track_caller]
    pub fn exchange_map<Req, Resp, F>(
        &self,
        requests: impl IntoIterator<Item = (usize, Req)>,
        batch: usize,
        handler: F,
    ) -> Vec<Resp>
    where
        Req: Send + Sync + 'static,
        Resp: Send + Sync + 'static,
        F: FnMut(Req) -> Resp,
    {
        let mut rpc: RpcAggregator<Req, Resp> = RpcAggregator::new(self, batch);
        for (dest, req) in requests {
            rpc.push(dest, req);
        }
        rpc.finish(handler)
    }
}

/// A per-rank aggregating sender: the software analogue of UPC's dynamically
/// aggregated fine-grained stores.
///
/// Construct with [`Aggregator::new`] (cheap; the underlying mailboxes are a
/// reused per-team slot), push items with [`Aggregator::push`] (buffers flush
/// automatically when they reach the configured batch size), and terminate
/// the phase with [`Aggregator::finish`], which flushes the remainder,
/// synchronises, and returns everything destined for the calling rank. All
/// ranks must construct and finish the aggregator in the same phase.
pub struct Aggregator<'c, 't, T: Send + Sync + 'static> {
    ctx: &'c Ctx<'t>,
    a2a: SlotLease<AllToAll<T>>,
    router: Option<NodeRouter<T>>,
    bufs: Vec<Vec<T>>,
    batch: usize,
    created: &'static Location<'static>,
    finished: bool,
}

impl<'c, 't, T: Send + Sync + 'static> Aggregator<'c, 't, T> {
    /// Creates an aggregator with the given per-destination batch size (the
    /// number of items accumulated before a flush).
    #[track_caller]
    pub fn new(ctx: &'c Ctx<'t>, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let a2a = ctx.mailboxes();
        let router = ctx.node_routing().then(|| NodeRouter::new(ctx));
        Aggregator {
            ctx,
            a2a,
            router,
            bufs: (0..ctx.ranks())
                .map(|_| Vec::with_capacity(batch))
                .collect(),
            batch,
            created: Location::caller(),
            finished: false,
        }
    }

    fn send(&self, dest: usize, batch: Vec<T>) {
        match &self.router {
            Some(r) if !self.ctx.topology().same_node(self.ctx.rank(), dest) => {
                let bytes = batch.len() * std::mem::size_of::<T>();
                r.send_remote(self.ctx, dest, batch, bytes);
            }
            _ => self.a2a.send_batch(self.ctx, dest, batch),
        }
    }

    /// Buffers one item for `dest`, flushing that destination's buffer if it
    /// reached the batch size.
    pub fn push(&mut self, dest: usize, item: T) {
        self.bufs[dest].push(item);
        if self.bufs[dest].len() >= self.batch {
            let full = std::mem::replace(&mut self.bufs[dest], Vec::with_capacity(self.batch));
            self.send(dest, full);
        }
    }

    /// Flushes every partially filled buffer without finishing the phase.
    pub fn flush(&mut self) {
        for dest in 0..self.bufs.len() {
            if !self.bufs[dest].is_empty() {
                let full = std::mem::take(&mut self.bufs[dest]);
                self.send(dest, full);
            }
        }
    }

    /// Flushes, synchronises all ranks, and returns the items destined for the
    /// calling rank. Collective.
    #[track_caller]
    pub fn finish(mut self) -> Vec<T> {
        self.finished = true;
        self.ctx.record_collective(
            OpKind::AggFinish,
            Location::caller(),
            std::any::type_name::<T>(),
            std::mem::size_of::<T>(),
        );
        self.flush();
        if let Some(router) = self.router.take() {
            router.deliver(self.ctx, &self.a2a);
        }
        self.ctx.barrier();
        let mine = self.a2a.take_inbox(self.ctx);
        // Required for mailbox reuse; see the module docs.
        self.ctx.barrier();
        mine
    }
}

impl<'c, 't, T: Send + Sync + 'static> Drop for Aggregator<'c, 't, T> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() && self.ctx.team().conformance_checking() {
            panic!(
                "Aggregator created @ {} dropped without finish(): the mailbox lease \
                 returns to the pool with deposits in flight, corrupting the next \
                 phase that reuses it",
                self.created
            );
        }
    }
}

/// A flushed byte-buffer batch travelling through a [`BlobAggregator`]
/// exchange. A newtype (rather than a bare `Vec<u8>`) so the reusable
/// mailbox slot cannot alias an ordinary `AllToAll<Vec<u8>>` and so the
/// item-count-based accounting of [`AllToAll::send_batch`] can be bypassed
/// in favour of exact byte accounting.
pub struct Blob(pub Vec<u8>);

impl AllToAll<Blob> {
    /// Deposits one pre-serialised blob into `dest`'s inbox, recording one
    /// aggregated message of exactly `blob.len()` payload bytes (the generic
    /// [`AllToAll::send_batch`] would count `size_of::<Blob>()` per item,
    /// which is meaningless for variable-length records).
    fn send_blob(&self, ctx: &Ctx, dest: usize, blob: Vec<u8>) {
        if blob.is_empty() {
            return;
        }
        ctx.record_message(dest, blob.len());
        self.inboxes[dest].lock().push(Blob(blob));
    }
}

/// A per-rank aggregating sender for **variable-length byte records**: the
/// counterpart of [`Aggregator`] for phases that serialise their items into
/// packed wire records (supermer-routed k-mer analysis) instead of shipping
/// fixed-size structs. Records are appended to a per-destination byte buffer;
/// a buffer is flushed as one aggregated message when it reaches
/// `batch_bytes`, and the flush accounts the *actual* payload bytes.
///
/// Construct with [`BlobAggregator::new`], append records with
/// [`BlobAggregator::push_record`] or serialise in place with
/// [`BlobAggregator::push_with`], and terminate the phase with
/// [`BlobAggregator::finish`], which returns every blob destined for the
/// calling rank (each blob holds only whole records, in sender order;
/// blob arrival order across senders is unspecified). Collective: all ranks
/// must construct and finish the aggregator in the same phase.
pub struct BlobAggregator<'c, 't> {
    ctx: &'c Ctx<'t>,
    a2a: SlotLease<AllToAll<Blob>>,
    router: Option<NodeRouter<Blob>>,
    bufs: Vec<Vec<u8>>,
    batch_bytes: usize,
    created: &'static Location<'static>,
    finished: bool,
}

impl<'c, 't> BlobAggregator<'c, 't> {
    /// Creates an aggregator flushing each destination's buffer once it holds
    /// at least `batch_bytes` bytes.
    #[track_caller]
    pub fn new(ctx: &'c Ctx<'t>, batch_bytes: usize) -> Self {
        assert!(batch_bytes > 0, "batch size must be positive");
        let a2a = ctx.mailboxes();
        let router = ctx.node_routing().then(|| NodeRouter::new(ctx));
        BlobAggregator {
            ctx,
            a2a,
            router,
            bufs: (0..ctx.ranks()).map(|_| Vec::new()).collect(),
            batch_bytes,
            created: Location::caller(),
            finished: false,
        }
    }

    fn send(&self, dest: usize, blob: Vec<u8>) {
        if blob.is_empty() {
            return;
        }
        match &self.router {
            Some(r) if !self.ctx.topology().same_node(self.ctx.rank(), dest) => {
                let bytes = blob.len();
                r.send_remote(self.ctx, dest, vec![Blob(blob)], bytes);
            }
            _ => self.a2a.send_blob(self.ctx, dest, blob),
        }
    }

    /// Appends one whole record to `dest`'s buffer.
    pub fn push_record(&mut self, dest: usize, record: &[u8]) {
        self.bufs[dest].extend_from_slice(record);
        self.maybe_flush(dest);
    }

    /// Serialises one record directly into `dest`'s buffer (saving the copy
    /// of [`BlobAggregator::push_record`]); `write` must append only whole
    /// records and returns its byte count, which is passed through.
    pub fn push_with(&mut self, dest: usize, write: impl FnOnce(&mut Vec<u8>) -> usize) -> usize {
        let written = write(&mut self.bufs[dest]);
        self.maybe_flush(dest);
        written
    }

    fn maybe_flush(&mut self, dest: usize) {
        if self.bufs[dest].len() >= self.batch_bytes {
            let full = std::mem::take(&mut self.bufs[dest]);
            self.send(dest, full);
        }
    }

    /// Flushes the remaining buffers, synchronises, and returns the blobs
    /// destined for the calling rank. Collective.
    #[track_caller]
    pub fn finish(mut self) -> Vec<Vec<u8>> {
        self.finished = true;
        self.ctx
            .record_collective(OpKind::BlobFinish, Location::caller(), "bytes", 1);
        for dest in 0..self.bufs.len() {
            if !self.bufs[dest].is_empty() {
                let full = std::mem::take(&mut self.bufs[dest]);
                self.send(dest, full);
            }
        }
        if let Some(router) = self.router.take() {
            router.deliver(self.ctx, &self.a2a);
        }
        self.ctx.barrier();
        let mine = self.a2a.take_inbox(self.ctx);
        // Required for mailbox reuse; see the module docs.
        self.ctx.barrier();
        mine.into_iter().map(|Blob(b)| b).collect()
    }
}

impl<'c, 't> Drop for BlobAggregator<'c, 't> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() && self.ctx.team().conformance_checking() {
            panic!(
                "BlobAggregator created @ {} dropped without finish(): the mailbox \
                 lease returns to the pool with deposits in flight, corrupting the \
                 next phase that reuses it",
                self.created
            );
        }
    }
}

/// Envelope carrying one request to its owner rank.
struct RpcRequest<Req> {
    origin: u32,
    seq: u32,
    req: Req,
}

/// Envelope carrying one response back to its requesting rank.
struct RpcReply<Resp> {
    seq: u32,
    resp: Resp,
}

/// The aggregated request–response primitive (use case 3 of §II-A): buffers
/// typed requests per owner rank, flushes them as aggregated messages, applies
/// an owner-side handler, and routes the responses back to the requesters in a
/// second aggregated all-to-all.
///
/// ```text
///   rank A ── [req,req,…] ──▶ owner ── handler ── [resp,resp,…] ──▶ rank A
/// ```
///
/// [`RpcAggregator::finish`] is the (only) collective point: every rank must
/// reach it, even with zero requests pushed. Responses come back in the exact
/// order the requests were pushed, so callers can zip them against their
/// request list. This is the software analogue of UPC code that batches
/// `upc_mem{get,put}`-style hash-table probes into large messages and receives
/// batched answers — the paper's aggregated-lookup optimisation that the
/// merAligner software cache and the read-localisation experiment build on.
pub struct RpcAggregator<'c, 't, Req, Resp>
where
    Req: Send + Sync + 'static,
    Resp: Send + Sync + 'static,
{
    ctx: &'c Ctx<'t>,
    requests: SlotLease<AllToAll<RpcRequest<Req>>>,
    replies: SlotLease<AllToAll<RpcReply<Resp>>>,
    req_router: Option<NodeRouter<RpcRequest<Req>>>,
    reply_router: Option<NodeRouter<RpcReply<Resp>>>,
    bufs: Vec<Vec<RpcRequest<Req>>>,
    batch: usize,
    next_seq: u32,
    created: &'static Location<'static>,
    finished: bool,
}

impl<'c, 't, Req, Resp> RpcAggregator<'c, 't, Req, Resp>
where
    Req: Send + Sync + 'static,
    Resp: Send + Sync + 'static,
{
    /// Creates an aggregator with the given per-destination request batch
    /// size. Cheap and barrier-free; the mailboxes are reused team slots.
    #[track_caller]
    pub fn new(ctx: &'c Ctx<'t>, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let requests = ctx.mailboxes();
        let replies = ctx.mailboxes();
        let hier = ctx.node_routing();
        RpcAggregator {
            ctx,
            requests,
            replies,
            req_router: hier.then(|| NodeRouter::new(ctx)),
            reply_router: hier.then(|| NodeRouter::new(ctx)),
            bufs: (0..ctx.ranks()).map(|_| Vec::new()).collect(),
            batch,
            next_seq: 0,
            created: Location::caller(),
            finished: false,
        }
    }

    fn send_requests(&self, dest: usize, batch: Vec<RpcRequest<Req>>) {
        match &self.req_router {
            Some(r) if !self.ctx.topology().same_node(self.ctx.rank(), dest) => {
                let bytes = batch.len() * std::mem::size_of::<RpcRequest<Req>>();
                r.send_remote(self.ctx, dest, batch, bytes);
            }
            _ => self.requests.send_batch(self.ctx, dest, batch),
        }
    }

    /// Number of requests pushed so far (and therefore of responses
    /// [`RpcAggregator::finish`] will return).
    pub fn len(&self) -> usize {
        self.next_seq as usize
    }

    /// True if no request has been pushed.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// Buffers one request for the owner rank `dest`, flushing that
    /// destination's buffer as an aggregated message when it reaches the
    /// batch size.
    pub fn push(&mut self, dest: usize, req: Req) {
        let envelope = RpcRequest {
            origin: self.ctx.rank() as u32,
            seq: self.next_seq,
            req,
        };
        self.next_seq = self
            .next_seq
            .checked_add(1)
            // lint: allow(unwrap): overflow here is a protocol-capacity bug, not recoverable
            .expect("more than u32::MAX requests in one RPC phase");
        self.bufs[dest].push(envelope);
        if self.bufs[dest].len() >= self.batch {
            let full = std::mem::take(&mut self.bufs[dest]);
            self.send_requests(dest, full);
        }
    }

    /// Completes the round trip: flushes the remaining request buffers,
    /// synchronises, answers the requests this rank owns with `handler`,
    /// ships the answers back in per-requester aggregated messages, and
    /// returns this rank's responses **in request push order**. Collective.
    #[track_caller]
    pub fn finish(mut self, mut handler: impl FnMut(Req) -> Resp) -> Vec<Resp> {
        let ctx = self.ctx;
        self.finished = true;
        ctx.record_collective(
            OpKind::RpcFinish,
            Location::caller(),
            std::any::type_name::<(Req, Resp)>(),
            std::mem::size_of::<Req>(),
        );
        for dest in 0..self.bufs.len() {
            if !self.bufs[dest].is_empty() {
                let full = std::mem::take(&mut self.bufs[dest]);
                self.send_requests(dest, full);
            }
        }
        if let Some(router) = self.req_router.take() {
            router.deliver(ctx, &self.requests);
        }
        ctx.barrier();
        // Owner side: answer every request received, grouped per requester so
        // each requester gets one aggregated response message. This request
        // drain is safe against the *next* phase's eagerly flushed pushes
        // (push sends before any barrier of its own phase!) because a rank
        // can only reach the next phase after passing this phase's second
        // barrier below, which in turn requires every rank to have completed
        // this drain.
        let mine = self.requests.take_inbox(ctx);
        let mut replies: Vec<Vec<RpcReply<Resp>>> = (0..ctx.ranks()).map(|_| Vec::new()).collect();
        for RpcRequest { origin, seq, req } in mine {
            replies[origin as usize].push(RpcReply {
                seq,
                resp: handler(req),
            });
        }
        for (dest, batch) in replies.into_iter().enumerate() {
            if !batch.is_empty() {
                // The owner produced the response payload either way, so
                // `rpc_resp_bytes` is identical in flat and hierarchical mode.
                let bytes = batch.len() * std::mem::size_of::<RpcReply<Resp>>();
                ctx.record_rpc_response_bytes(bytes);
                match &self.reply_router {
                    Some(r) if !ctx.topology().same_node(ctx.rank(), dest) => {
                        r.send_remote(ctx, dest, batch, bytes);
                    }
                    _ => self.replies.send_batch(ctx, dest, batch),
                }
            }
        }
        if let Some(router) = self.reply_router.take() {
            router.deliver(ctx, &self.replies);
        }
        ctx.barrier();
        let mut mine = self.replies.take_inbox(ctx);
        mine.sort_unstable_by_key(|r| r.seq);
        debug_assert_eq!(mine.len(), self.next_seq as usize, "lost RPC responses");
        ctx.record_rpc_round_trip();
        // No trailing barrier is needed after this reply drain. Replies —
        // unlike requests — are only ever sent between a phase's first and
        // second barriers, and no rank can reach the next phase's first
        // barrier until *every* rank reaches it, i.e. until every rank has
        // finished this phase entirely, including this drain. So next-phase
        // replies cannot land in an inbox that still has this phase's drain
        // pending.
        mine.into_iter().map(|r| r.resp).collect()
    }
}

impl<'c, 't, Req, Resp> Drop for RpcAggregator<'c, 't, Req, Resp>
where
    Req: Send + Sync + 'static,
    Resp: Send + Sync + 'static,
{
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() && self.ctx.team().conformance_checking() {
            panic!(
                "RpcAggregator created @ {} dropped without finish(): the mailbox \
                 leases return to the pool with requests in flight, corrupting the \
                 next phase that reuses them",
                self.created
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;
    use crate::topology::Topology;

    #[test]
    fn exchange_routes_items_to_owners() {
        let team = Team::single_node(4);
        let received = team.run(|ctx| {
            let n = ctx.ranks();
            // Rank r sends value 100*r + d to destination d.
            let outgoing: Vec<Vec<usize>> = (0..n).map(|d| vec![100 * ctx.rank() + d]).collect();
            let mut got = ctx.exchange(outgoing);
            got.sort();
            got
        });
        for (d, got) in received.iter().enumerate() {
            let expect: Vec<usize> = (0..4).map(|r| 100 * r + d).collect();
            assert_eq!(got, &expect);
        }
    }

    #[test]
    fn exchange_empty_batches_ok() {
        let team = Team::single_node(3);
        let received = team.run(|ctx| ctx.exchange::<u64>(vec![vec![]; ctx.ranks()]));
        assert!(received.iter().all(|v| v.is_empty()));
        assert_eq!(team.stats_total().msgs_sent, 0);
    }

    #[test]
    fn repeated_exchanges_reuse_the_mailboxes_without_leaking_items() {
        let team = Team::single_node(3);
        // The mailbox array must be the same allocation across consecutive
        // phases, while two leases held at once must get distinct instances.
        let slots = team.run(|ctx| {
            let first = {
                let lease = ctx.mailboxes::<u64>();
                &*lease as *const AllToAll<u64> as usize
            };
            let second = {
                let lease = ctx.mailboxes::<u64>();
                &*lease as *const AllToAll<u64> as usize
            };
            assert_eq!(first, second, "sequential phases must reuse the slot");
            let a = ctx.mailboxes::<u64>();
            let b = ctx.mailboxes::<u64>();
            assert_ne!(
                &*a as *const AllToAll<u64>, &*b as *const AllToAll<u64>,
                "concurrent same-typed leases must not alias"
            );
            first
        });
        assert!(slots.windows(2).all(|w| w[0] == w[1]));
        // …and every phase must receive exactly its own items.
        team.run(|ctx| {
            for phase in 0..10u64 {
                let outgoing: Vec<Vec<u64>> = (0..ctx.ranks())
                    .map(|d| vec![phase * 1000 + ctx.rank() as u64 * 10 + d as u64])
                    .collect();
                let got = ctx.exchange(outgoing);
                assert_eq!(got.len(), ctx.ranks(), "phase {phase} leaked items");
                assert!(got.iter().all(|v| v / 1000 == phase));
            }
        });
    }

    #[test]
    fn aggregator_delivers_everything_once() {
        let team = Team::single_node(4);
        let per_rank_items = 100usize;
        let received = team.run(|ctx| {
            let n = ctx.ranks();
            let mut agg: Aggregator<(usize, usize)> = Aggregator::new(ctx, 7);
            for i in 0..per_rank_items {
                let dest = i % n;
                agg.push(dest, (ctx.rank(), i));
            }
            let mut got = agg.finish();
            got.sort();
            got
        });
        let total: usize = received.iter().map(|v| v.len()).sum();
        assert_eq!(total, 4 * per_rank_items);
        // Every item lands at the destination its index selects.
        for (dest, items) in received.iter().enumerate() {
            assert!(items.iter().all(|&(_, i)| i % 4 == dest));
        }
    }

    #[test]
    fn concurrent_same_typed_aggregators_do_not_alias() {
        let team = Team::single_node(4);
        let received = team.run(|ctx| {
            let n = ctx.ranks();
            // Two aggregators of the same item type, live at the same time,
            // with batch sizes small enough that both auto-flush mid-phase.
            let mut evens: Aggregator<u64> = Aggregator::new(ctx, 3);
            let mut odds: Aggregator<u64> = Aggregator::new(ctx, 3);
            for i in 0..40u64 {
                evens.push((i as usize) % n, 2 * i);
                odds.push((i as usize) % n, 2 * i + 1);
            }
            let got_odds = odds.finish();
            let got_evens = evens.finish();
            (got_evens, got_odds)
        });
        let mut total = 0usize;
        for (evens, odds) in received {
            assert!(
                evens.iter().all(|v| v % 2 == 0),
                "odd item leaked: {evens:?}"
            );
            assert!(
                odds.iter().all(|v| v % 2 == 1),
                "even item leaked: {odds:?}"
            );
            total += evens.len() + odds.len();
        }
        assert_eq!(total, 4 * 80);
    }

    #[test]
    fn aggregation_reduces_message_count() {
        let items = 1000usize;
        let count_msgs = |batch: usize| {
            let team = Team::new(Topology::new(4, 1));
            team.run(|ctx| {
                let mut agg: Aggregator<u64> = Aggregator::new(ctx, batch);
                for i in 0..items {
                    agg.push(i % ctx.ranks(), i as u64);
                }
                let _ = agg.finish();
            });
            team.stats_total().msgs_sent
        };
        let fine = count_msgs(1);
        let coarse = count_msgs(128);
        assert!(
            coarse * 10 < fine,
            "aggregated messaging should send far fewer messages: fine={fine} coarse={coarse}"
        );
    }

    #[test]
    fn blob_aggregator_delivers_whole_records_and_counts_exact_bytes() {
        let team = Team::single_node(3);
        let received = team.run(|ctx| {
            let n = ctx.ranks();
            let mut agg = BlobAggregator::new(ctx, 16);
            // Rank r sends 30 records of varying length to round-robin
            // destinations; each record is [dest, r, len, 0xAB * (len-3)].
            for i in 0..30usize {
                let dest = i % n;
                let len = 3 + (i % 5);
                let mut rec = vec![dest as u8, ctx.rank() as u8, len as u8];
                rec.resize(len, 0xAB);
                agg.push_record(dest, &rec);
            }
            let blobs = agg.finish();
            // Reassemble records from each blob: all must be destined here,
            // whole, and well-formed.
            let mut count = 0usize;
            let mut bytes = 0usize;
            for blob in &blobs {
                let mut off = 0;
                while off < blob.len() {
                    assert_eq!(blob[off] as usize, ctx.rank(), "misrouted record");
                    let len = blob[off + 2] as usize;
                    assert!(blob[off + 3..off + len].iter().all(|&b| b == 0xAB));
                    off += len;
                    count += 1;
                }
                assert_eq!(off, blob.len(), "record split across blobs");
                bytes += blob.len();
            }
            (count, bytes)
        });
        let total: usize = received.iter().map(|&(c, _)| c).sum();
        assert_eq!(total, 3 * 30);
        // Byte accounting is exact: bytes_sent equals the payload received.
        let payload: usize = received.iter().map(|&(_, b)| b).sum();
        assert_eq!(team.stats_total().bytes_sent, payload as u64);
    }

    #[test]
    fn blob_aggregator_push_with_serialises_in_place() {
        let team = Team::single_node(2);
        team.run(|ctx| {
            let mut agg = BlobAggregator::new(ctx, 8);
            let wrote = agg.push_with(1 - ctx.rank(), |buf| {
                buf.extend_from_slice(&[1, 2, 3, 4]);
                4
            });
            assert_eq!(wrote, 4);
            let blobs = agg.finish();
            assert_eq!(blobs.concat(), vec![1, 2, 3, 4]);
        });
    }

    #[test]
    fn rpc_round_trip_answers_in_push_order() {
        let team = Team::single_node(4);
        let outputs = team.run(|ctx| {
            let n = ctx.ranks();
            let mut rpc: RpcAggregator<u64, u64> = RpcAggregator::new(ctx, 3);
            // Interleave destinations so responses arrive from many owners and
            // include duplicate requests.
            let reqs: Vec<(usize, u64)> = (0..50u64)
                .map(|i| ((i as usize * 7 + ctx.rank()) % n, i % 10))
                .collect();
            for &(dest, req) in &reqs {
                rpc.push(dest, req);
            }
            assert_eq!(rpc.len(), reqs.len());
            // Owner answers with `1000 * owner_rank + req`.
            let rank = ctx.rank() as u64;
            let resps = rpc.finish(|req| 1000 * rank + req);
            (reqs, resps)
        });
        for (reqs, resps) in outputs {
            assert_eq!(reqs.len(), resps.len());
            for ((dest, req), resp) in reqs.into_iter().zip(resps) {
                assert_eq!(resp, 1000 * dest as u64 + req);
            }
        }
    }

    #[test]
    fn rpc_with_no_requests_on_some_ranks_completes() {
        let team = Team::single_node(3);
        let outputs = team.run(|ctx| {
            let reqs: Vec<(usize, u32)> = if ctx.rank() == 1 {
                vec![(0, 5), (2, 6), (1, 7)]
            } else {
                Vec::new()
            };
            ctx.exchange_map(reqs, 8, |r: u32| r * 2)
        });
        assert!(outputs[0].is_empty());
        assert_eq!(outputs[1], vec![10, 12, 14]);
        assert!(outputs[2].is_empty());
        // Every rank completed one round trip; the responses were accounted.
        let total = team.stats_total();
        assert_eq!(total.rpc_round_trips, 3);
        assert!(total.rpc_resp_bytes > 0);
    }

    #[test]
    fn rpc_aggregation_reduces_message_count() {
        let requests = 600usize;
        let count_msgs = |batch: usize| {
            let team = Team::single_node(4);
            team.run(|ctx| {
                let mut rpc: RpcAggregator<u64, u64> = RpcAggregator::new(ctx, batch);
                for i in 0..requests {
                    rpc.push(i % ctx.ranks(), i as u64);
                }
                let resps = rpc.finish(|r| r + 1);
                assert_eq!(resps.len(), requests);
            });
            team.stats_total().msgs_sent
        };
        let fine = count_msgs(1);
        let coarse = count_msgs(256);
        assert!(
            coarse * 10 < fine,
            "aggregated requests should send far fewer messages: fine={fine} coarse={coarse}"
        );
    }

    /// Runs `f` on a fresh team over `topo` with hierarchical exchange on or
    /// off, returning the per-rank results and the team-summed statistics.
    fn run_mode<R, F>(topo: Topology, hier: bool, f: F) -> (Vec<R>, crate::stats::StatsSnapshot)
    where
        R: Send,
        F: Fn(&Ctx) -> R + Send + Sync,
    {
        let team = Team::new(topo);
        team.set_hierarchical_exchange(hier);
        let out = team.run(f);
        (out, team.stats_total())
    }

    #[test]
    fn hierarchical_exchange_delivers_identically_with_fewer_off_node_messages() {
        let topo = Topology::new(8, 2);
        let body = |ctx: &Ctx| {
            let n = ctx.ranks();
            let outgoing: Vec<Vec<u64>> = (0..n)
                .map(|d| {
                    (0..5)
                        .map(|i| (100 * ctx.rank() + 10 * d + i) as u64)
                        .collect()
                })
                .collect();
            let mut got = ctx.exchange(outgoing);
            got.sort_unstable();
            got
        };
        let (flat, fs) = run_mode(topo, false, body);
        let (hier, hs) = run_mode(topo, true, body);
        assert_eq!(
            flat, hier,
            "routing must not change what each rank receives"
        );
        // The payload crosses the interconnect exactly once either way…
        assert_eq!(fs.off_node_bytes, hs.off_node_bytes);
        // …but as one combined message per (source node, destination node)
        // pair instead of one per (rank, rank) pair: 4 nodes × 3 remote nodes
        // versus 8 ranks × 6 remote ranks.
        assert_eq!(fs.off_node_msgs, 8 * 6);
        assert_eq!(hs.off_node_msgs, 4 * 3);
        // The byte/message splits stay exhaustive in both modes.
        for s in [&fs, &hs] {
            assert_eq!(s.on_node_bytes + s.off_node_bytes, s.bytes_sent);
            assert_eq!(s.on_node_msgs + s.off_node_msgs, s.msgs_sent);
        }
        // The gather/scatter legs surface as extra on-node traffic.
        assert!(hs.on_node_bytes > fs.on_node_bytes);
    }

    #[test]
    fn hierarchical_aggregator_matches_flat_delivery() {
        let topo = Topology::new(8, 2);
        let body = |ctx: &Ctx| {
            let n = ctx.ranks();
            let mut agg: Aggregator<(usize, usize)> = Aggregator::new(ctx, 7);
            for i in 0..100usize {
                agg.push((ctx.rank() + i) % n, (ctx.rank(), i));
            }
            let mut got = agg.finish();
            got.sort_unstable();
            got
        };
        let (flat, fs) = run_mode(topo, false, body);
        let (hier, hs) = run_mode(topo, true, body);
        assert_eq!(flat, hier);
        assert_eq!(fs.off_node_bytes, hs.off_node_bytes);
        assert!(
            hs.off_node_msgs * 2 <= fs.off_node_msgs,
            "expected ≥2× fewer off-node messages at 2 ranks/node: flat={} hier={}",
            fs.off_node_msgs,
            hs.off_node_msgs
        );
    }

    #[test]
    fn hierarchical_blob_aggregator_keeps_exact_byte_accounting() {
        let topo = Topology::new(4, 2);
        let body = |ctx: &Ctx| {
            let n = ctx.ranks();
            let mut agg = BlobAggregator::new(ctx, 16);
            for i in 0..30usize {
                let dest = i % n;
                let len = 3 + (i % 5);
                let mut rec = vec![dest as u8, ctx.rank() as u8, len as u8];
                rec.resize(len, 0xCD);
                agg.push_record(dest, &rec);
            }
            let mut blobs = agg.finish();
            blobs.sort_unstable();
            blobs
        };
        let (flat, fs) = run_mode(topo, false, body);
        let (hier, hs) = run_mode(topo, true, body);
        assert_eq!(flat, hier, "blobs must arrive whole and identical");
        assert_eq!(
            fs.off_node_bytes, hs.off_node_bytes,
            "off-node payload bytes are mode-independent"
        );
        assert!(hs.off_node_msgs < fs.off_node_msgs);
    }

    #[test]
    fn hierarchical_rpc_matches_flat_responses() {
        let topo = Topology::new(8, 2);
        let body = |ctx: &Ctx| {
            let n = ctx.ranks();
            let mut rpc: RpcAggregator<u64, u64> = RpcAggregator::new(ctx, 3);
            let reqs: Vec<(usize, u64)> = (0..50u64)
                .map(|i| ((i as usize * 7 + ctx.rank()) % n, i))
                .collect();
            for &(dest, req) in &reqs {
                rpc.push(dest, req);
            }
            let rank = ctx.rank() as u64;
            let resps = rpc.finish(|req| 1000 * rank + req);
            for ((dest, req), resp) in reqs.iter().zip(&resps) {
                assert_eq!(*resp, 1000 * *dest as u64 + req);
            }
            resps
        };
        let (flat, fs) = run_mode(topo, false, body);
        let (hier, hs) = run_mode(topo, true, body);
        assert_eq!(flat, hier, "responses must be identical and in push order");
        assert_eq!(fs.rpc_resp_bytes, hs.rpc_resp_bytes);
        assert_eq!(fs.off_node_bytes, hs.off_node_bytes);
        assert!(hs.off_node_msgs < fs.off_node_msgs);
        assert_eq!(fs.rpc_round_trips, hs.rpc_round_trips);
    }

    #[test]
    fn hierarchical_routing_on_non_uniform_topologies() {
        // 5 ranks at 2 per node: nodes {0,1}, {2,3}, {4} — the last node is
        // partial and its leader is also its only member.
        for topo in [Topology::new(5, 2), Topology::new(7, 3)] {
            let body = |ctx: &Ctx| {
                let n = ctx.ranks();
                let outgoing: Vec<Vec<u32>> =
                    (0..n).map(|d| vec![(ctx.rank() * n + d) as u32]).collect();
                let mut got = ctx.exchange(outgoing);
                got.sort_unstable();
                let resps =
                    ctx.exchange_map((0..n).map(|d| (d, ctx.rank() as u32)), 4, |r: u32| r + 1);
                (got, resps)
            };
            let (flat, fs) = run_mode(topo, false, body);
            let (hier, hs) = run_mode(topo, true, body);
            assert_eq!(flat, hier, "topology {topo:?}");
            assert_eq!(fs.off_node_bytes, hs.off_node_bytes, "topology {topo:?}");
        }
    }

    #[test]
    fn single_node_hierarchical_mode_is_byte_identical_to_flat() {
        // With one node the router is bypassed entirely; the flag must not
        // change any accounting (existing benchmarks rely on this).
        let body = |ctx: &Ctx| {
            let n = ctx.ranks();
            let mut agg: Aggregator<u64> = Aggregator::new(ctx, 4);
            for i in 0..40u64 {
                agg.push((i as usize) % n, i);
            }
            let mut got = agg.finish();
            got.sort_unstable();
            got
        };
        let (flat, fs) = run_mode(Topology::single_node(4), false, body);
        let (hier, hs) = run_mode(Topology::single_node(4), true, body);
        assert_eq!(flat, hier);
        assert_eq!(fs, hs);
    }

    #[test]
    fn repeated_rpc_phases_do_not_leak_across_phases() {
        let team = Team::single_node(4);
        team.run(|ctx| {
            for phase in 0..20u64 {
                let n = ctx.ranks();
                let reqs: Vec<(usize, u64)> = (0..(ctx.rank() * 3) as u64)
                    .map(|i| ((i as usize) % n, phase * 100 + i))
                    .collect();
                let expect: Vec<u64> = reqs.iter().map(|&(_, r)| r + 7).collect();
                let got = ctx.exchange_map(reqs, 2, |r: u64| r + 7);
                assert_eq!(got, expect, "phase {phase} mixed responses");
            }
        });
    }

    #[test]
    #[should_panic(expected = "dropped without finish()")]
    fn aggregator_dropped_without_finish_is_caught() {
        let team = Team::single_node(2);
        team.set_conformance_checking(true);
        team.run(|ctx| {
            let mut agg: Aggregator<u64> = Aggregator::new(ctx, 4);
            agg.push((ctx.rank() + 1) % ctx.ranks(), 7);
            // Seeded violation: the phase ends without finish(), so the
            // mailbox lease would return to the pool with deposits in flight.
            drop(agg);
        });
    }

    #[test]
    #[should_panic(expected = "conformance violation")]
    fn mismatched_exchange_payload_shape_is_caught() {
        let team = Team::single_node(2);
        team.set_conformance_checking(true);
        team.run(|ctx| {
            // Seeded violation: the ranks disagree on the exchanged element
            // type, which (uncaught) would route through *different* pooled
            // mailboxes and silently drop every item.
            if ctx.rank() == 0 {
                let _ = ctx.exchange::<u64>(vec![Vec::new(), Vec::new()]);
            } else {
                let _ = ctx.exchange::<u32>(vec![Vec::new(), Vec::new()]);
            }
        });
    }

    #[test]
    fn finished_aggregators_pass_conformance_checking() {
        let team = Team::single_node(2);
        team.set_conformance_checking(true);
        team.run(|ctx| {
            let mut agg: Aggregator<u64> = Aggregator::new(ctx, 4);
            agg.push((ctx.rank() + 1) % ctx.ranks(), ctx.rank() as u64);
            let got = agg.finish();
            assert_eq!(got.len(), 1);
        });
    }
}
