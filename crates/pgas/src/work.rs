//! Dynamic work distribution.
//!
//! §II-G of the paper: statically assigning contigs to processors for local
//! assembly causes severe load imbalance because walk costs are unpredictable,
//! so MetaHipMer lets each processor grab blocks of work through a single
//! global atomic counter. [`DynamicBlocks`] is that counter.

use crate::team::Ctx;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared block dealer over the index range `0..total`.
///
/// Construct one per phase (collectively via [`Ctx::share`]) and have every
/// rank repeatedly call [`DynamicBlocks::next_block`] until it returns `None`.
#[derive(Debug)]
pub struct DynamicBlocks {
    next: AtomicUsize,
    total: usize,
    block: usize,
}

impl DynamicBlocks {
    /// Creates a dealer over `0..total` handing out blocks of `block` items.
    ///
    /// # Panics
    /// Panics if `block == 0`.
    pub fn new(total: usize, block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        DynamicBlocks {
            next: AtomicUsize::new(0),
            total,
            block,
        }
    }

    /// Grabs the next block of work. The first block a rank grabs is "its
    /// own"; subsequent grabs are counted as steals in the rank's statistics
    /// (`is_first` lets the caller tell the two apart).
    pub fn next_block(&self, ctx: &Ctx, is_first: bool) -> Option<Range<usize>> {
        ctx.record_atomic();
        let start = self.next.fetch_add(self.block, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        if !is_first {
            ctx.stats().steals.fetch_add(1, Ordering::Relaxed);
        }
        Some(start..(start + self.block).min(self.total))
    }

    /// Total number of items being dealt.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Convenience driver: repeatedly grabs blocks and calls `work` on every
    /// index until the pool is exhausted. Returns how many items this rank
    /// processed.
    pub fn drive(&self, ctx: &Ctx, mut work: impl FnMut(usize)) -> usize {
        let mut processed = 0usize;
        let mut first = true;
        while let Some(range) = self.next_block(ctx, first) {
            first = false;
            for i in range {
                work(i);
                processed += 1;
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn every_item_processed_exactly_once() {
        let team = Team::single_node(4);
        let total = 1003usize;
        let seen = Arc::new(Mutex::new(vec![0u32; total]));
        let seen2 = Arc::clone(&seen);
        let processed = team.run(move |ctx| {
            let blocks = ctx.share(|| DynamicBlocks::new(total, 16));
            blocks.drive(ctx, |i| {
                seen2.lock()[i] += 1;
            })
        });
        assert_eq!(processed.iter().sum::<usize>(), total);
        assert!(seen.lock().iter().all(|&c| c == 1));
    }

    #[test]
    fn empty_pool_returns_none_immediately() {
        let team = Team::single_node(2);
        let processed = team.run(|ctx| {
            let blocks = ctx.share(|| DynamicBlocks::new(0, 8));
            blocks.drive(ctx, |_| panic!("no work expected"))
        });
        assert!(processed.iter().all(|&p| p == 0));
    }

    #[test]
    fn work_stealing_balances_skewed_costs() {
        // One rank's "own" region contains all the expensive items; dynamic
        // blocks let the other ranks take over the tail.
        let team = Team::single_node(4);
        let total = 64usize;
        let processed = team.run(|ctx| {
            let blocks = ctx.share(|| DynamicBlocks::new(total, 1));
            let mut count = 0usize;
            let mut first = true;
            while let Some(range) = blocks.next_block(ctx, first) {
                first = false;
                for _i in range {
                    // Rank 0 is slow for every item; others are fast.
                    if ctx.rank() == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    count += 1;
                }
            }
            count
        });
        let total_done: usize = processed.iter().sum();
        assert_eq!(total_done, total);
        // The fast ranks must have done the lion's share.
        assert!(
            processed[0] < total / 2,
            "slow rank did {} items",
            processed[0]
        );
        assert!(team.stats_total().steals > 0);
    }
}
