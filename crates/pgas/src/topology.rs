//! Rank/node topology of a simulated distributed-memory machine.

/// Describes how many SPMD ranks exist and how they are grouped into nodes.
///
/// The paper's experiments run 32 ranks per Cori node; communication between
/// ranks on the same node is cheap (shared memory) while communication across
/// nodes crosses the interconnect. We keep the same distinction so that the
/// accounting layer can report off-node traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    ranks: usize,
    ranks_per_node: usize,
}

impl Topology {
    /// Creates a topology with `ranks` ranks grouped `ranks_per_node` to a node.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(ranks: usize, ranks_per_node: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        assert!(ranks_per_node > 0, "need at least one rank per node");
        Topology {
            ranks,
            ranks_per_node,
        }
    }

    /// A single-node topology (every rank is "local" to every other).
    ///
    /// # Panics
    /// Panics if `ranks` is zero, exactly like [`Topology::new`].
    pub fn single_node(ranks: usize) -> Self {
        Topology::new(ranks, ranks)
    }

    /// Total number of ranks.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Ranks per simulated node.
    #[inline]
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Number of simulated nodes (the last node may be partially filled).
    #[inline]
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.ranks_per_node)
    }

    /// The node a rank belongs to.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.ranks);
        rank / self.ranks_per_node
    }

    /// True if two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The leader rank of a node: its lowest-numbered rank. Node leaders are
    /// the gather/scatter endpoints of the hierarchical two-level exchange.
    #[inline]
    pub fn leader_of_node(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes());
        node * self.ranks_per_node
    }

    /// The leader rank of the node `rank` belongs to.
    #[inline]
    pub fn leader_of(&self, rank: usize) -> usize {
        self.leader_of_node(self.node_of(rank))
    }

    /// True if `rank` is its node's leader.
    #[inline]
    pub fn is_leader(&self, rank: usize) -> bool {
        self.leader_of(rank) == rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_arithmetic() {
        let t = Topology::new(10, 4);
        assert_eq!(t.ranks(), 10);
        assert_eq!(t.nodes(), 3);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(9), 2);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn single_node_everything_local() {
        let t = Topology::single_node(8);
        assert_eq!(t.nodes(), 1);
        for a in 0..8 {
            for b in 0..8 {
                assert!(t.same_node(a, b));
            }
        }
    }

    #[test]
    fn leaders_are_lowest_ranks_of_each_node() {
        let t = Topology::new(10, 4); // nodes {0..4}, {4..8}, {8, 9}
        assert_eq!(t.leader_of_node(0), 0);
        assert_eq!(t.leader_of_node(1), 4);
        assert_eq!(t.leader_of_node(2), 8);
        assert_eq!(t.leader_of(3), 0);
        assert_eq!(t.leader_of(7), 4);
        assert_eq!(t.leader_of(9), 8);
        for r in 0..10 {
            assert_eq!(t.is_leader(r), r == 0 || r == 4 || r == 8);
        }
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        let _ = Topology::new(0, 1);
    }

    #[test]
    #[should_panic]
    fn single_node_zero_ranks_rejected() {
        // `single_node` must agree with `new` instead of silently clamping
        // `ranks == 0` to a one-rank-per-node topology.
        let _ = Topology::single_node(0);
    }
}
