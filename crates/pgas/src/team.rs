//! SPMD teams, rank contexts and collectives.
//!
//! A [`Team`] owns everything the ranks share: the topology, the barrier, the
//! statistics and the scratch slots used by collectives. `Team::run` spawns
//! one thread per rank and executes the same closure on each, mirroring UPC's
//! SPMD execution of `main` across `THREADS` ranks. Inside the closure, the
//! per-rank [`Ctx`] exposes the collectives and the accounting hooks.

use crate::conformance::{ConformanceState, OpKind, OpRecord};
use crate::stats::{CommStats, StatsSnapshot};
use crate::topology::Topology;
use parking_lot::Mutex;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A kill instruction for fault-injection runs (see [`Team::set_fault_plan`]):
/// rank `rank` aborts the moment it *enters* its `(after_barriers + 1)`-th
/// barrier, i.e. after having completed `after_barriers` barriers. Because all
/// ranks execute the same collective sequence, a barrier index addresses a
/// deterministic point of the program, which is what lets a harness kill a run
/// "just after checkpoint i committed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The rank to kill.
    pub rank: usize,
    /// How many barriers the rank completes before dying at the next one.
    pub after_barriers: u64,
}

/// The outcome of an injected fault: returned by [`Team::try_run`] when a
/// [`FaultPlan`] fired (also used as the killed rank's panic payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFault {
    /// The rank that was killed.
    pub rank: usize,
    /// Barriers the rank had completed when it died.
    pub barriers_entered: u64,
}

impl std::fmt::Display for RankFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} killed by fault plan after {} barriers",
            self.rank, self.barriers_entered
        )
    }
}

/// Panic payload of ranks collaterally aborted by a poisoned barrier (they
/// were blocked in, or later reached, a barrier another rank will never
/// enter). Distinguished from [`RankFault`] so `try_run` can tell the injected
/// kill from its shockwave.
struct BarrierPoisoned;

/// A `std::sync::Barrier` look-alike that can be *poisoned*: once any rank
/// dies, every current and future waiter unblocks by panicking (with a
/// [`BarrierPoisoned`] payload) instead of deadlocking on the missing rank.
struct AbortableBarrier {
    n: usize,
    state: std::sync::Mutex<BarrierState>,
    cvar: std::sync::Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
    poisoned: bool,
}

impl AbortableBarrier {
    fn new(n: usize) -> Self {
        AbortableBarrier {
            n,
            state: std::sync::Mutex::new(BarrierState {
                count: 0,
                generation: 0,
                poisoned: false,
            }),
            cvar: std::sync::Condvar::new(),
        }
    }

    /// Locks the state, shedding std's lock poisoning: our own `poisoned`
    /// flag is the fault protocol, and the flag-setting panics below would
    /// otherwise poison the std mutex for every later waiter.
    fn lock(&self) -> std::sync::MutexGuard<'_, BarrierState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait(&self) {
        self.wait_with(|| Ok(()));
    }

    /// Like `wait`, but the **last arriver** runs `on_last` while holding the
    /// barrier lock — every other rank is parked in the rendezvous, which is
    /// exactly the quiescent point the conformance cross-check needs. If
    /// `on_last` returns `Err`, the barrier is poisoned (so the parked ranks
    /// abort with `BarrierPoisoned`) and the last arriver panics with the
    /// message — a genuine panic that propagates through `try_run`.
    fn wait_with<F>(&self, on_last: F)
    where
        F: FnOnce() -> Result<(), String>,
    {
        mhm_sched::yield_point("pgas::barrier::enter");
        let mut s = self.lock();
        if s.poisoned {
            drop(s);
            std::panic::panic_any(BarrierPoisoned);
        }
        s.count += 1;
        if s.count == self.n {
            s.count = 0;
            if let Err(msg) = on_last() {
                s.poisoned = true;
                self.cvar.notify_all();
                drop(s);
                panic!("{msg}");
            }
            s.generation = s.generation.wrapping_add(1);
            self.cvar.notify_all();
            return;
        }
        let gen = s.generation;
        while s.generation == gen && !s.poisoned {
            s = self.cvar.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        let aborted = s.poisoned && s.generation == gen;
        drop(s);
        if aborted {
            std::panic::panic_any(BarrierPoisoned);
        }
        mhm_sched::yield_point("pgas::barrier::exit");
    }

    fn poison(&self) {
        mhm_sched::yield_point("pgas::barrier::poison");
        let mut s = self.lock();
        s.poisoned = true;
        self.cvar.notify_all();
    }
}

/// Installs (once, process-wide) a delegating panic hook that silences the
/// expected fault-propagation payloads — an injected [`RankFault`] and its
/// [`BarrierPoisoned`] shockwave — so a fault-injection run doesn't spray
/// "thread panicked" noise for panics the harness is about to catch. All
/// other panics delegate to the previously installed hook unchanged.
fn install_fault_panic_hook() {
    static HOOK: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<RankFault>().is_some()
                || info.payload().downcast_ref::<BarrierPoisoned>().is_some()
            {
                return;
            }
            UNEXPECTED_PANICS.fetch_add(1, Ordering::SeqCst);
            prev(info);
        }));
    });
}

/// Process-wide count of panics that were neither an injected [`RankFault`]
/// nor its `BarrierPoisoned` shockwave — i.e. genuine bugs. Maintained by the
/// delegating panic hook so harness binaries can detect worker-thread panics
/// that a sloppy `let _ = handle.join()` would otherwise mask.
static UNEXPECTED_PANICS: AtomicU64 = AtomicU64::new(0);

/// Installs the fault-classifying panic hook (idempotent). Harness `main`s
/// call this before doing any work so that [`unexpected_panics`] observes
/// every thread's panics, including ones swallowed by join order.
pub fn install_panic_accounting() {
    install_fault_panic_hook();
}

/// Number of unexpected (non-fault-protocol) panics seen process-wide since
/// startup. Compare snapshots around a harness body to detect masked worker
/// panics; see `mhm_bench::harness_exit_code`.
pub fn unexpected_panics() -> u64 {
    UNEXPECTED_PANICS.load(Ordering::SeqCst)
}

/// Shared SPMD team state.
pub struct Team {
    topo: Topology,
    barrier: AbortableBarrier,
    /// Per-rank count of barriers entered, driving [`FaultPlan`] placement
    /// and exposed via [`Ctx::barriers_entered`].
    barrier_counts: Vec<AtomicU64>,
    /// Whether any [`FaultPlan`] is armed; the barrier hot path pays one
    /// relaxed load when not. The plans themselves live behind a lock since
    /// they are only consulted once the flag is set.
    fault_armed: AtomicBool,
    fault_plans: Mutex<Vec<FaultPlan>>,
    /// Collective-conformance traces, digests and local-phase registries
    /// (see [`crate::conformance`]).
    conformance: ConformanceState,
    stats: Vec<CommStats>,
    /// Slot used by `share`/`broadcast` collectives (rank 0 publishes a value,
    /// everyone clones it). Protected by the surrounding barrier protocol.
    share_slot: Mutex<Option<Arc<dyn Any + Send + Sync>>>,
    /// Per-rank contribution slots for u64 reductions.
    reduce_u64: Vec<AtomicU64>,
    /// Per-rank contribution slots for f64 reductions (bit-cast through u64).
    reduce_f64: Vec<AtomicU64>,
    /// Long-lived shared values keyed by type and lease index, reused across
    /// collective phases (e.g. the exchange mailboxes) so that each phase
    /// does not pay for a fresh allocation plus a serialising `share` round.
    /// The lease index distinguishes collectives of the same item type that
    /// are live simultaneously (see [`Team::reusable_slot`]).
    reusable_slots: Mutex<HashMap<(TypeId, usize), Arc<dyn Any + Send + Sync>>>,
    /// Route aggregated exchanges through node leaders (two-level gather /
    /// ship / scatter) instead of flat rank-to-rank all-to-alls. Set before
    /// an SPMD region via [`Team::set_hierarchical_exchange`]; read by the
    /// exchange primitives at construction time.
    hierarchical_exchange: AtomicBool,
}

thread_local! {
    /// Per-rank (per SPMD thread) lease table: for each slot type, which
    /// pooled instances this rank currently holds. Ranks execute the same
    /// program in the same order, so every rank computes the same lease index
    /// for the same collective and all of them resolve to the same pooled
    /// instance — without any cross-rank synchronisation.
    static SLOT_LEASES: std::cell::RefCell<HashMap<TypeId, Vec<bool>>> =
        std::cell::RefCell::new(HashMap::new());
}

/// A leased reusable team slot (see [`Team::reusable_slot`]). Dereferences to
/// the shared value; dropping the lease returns the instance to the pool for
/// the rank's next acquisition. Not `Send`: the lease must be dropped on the
/// rank thread that acquired it (which SPMD code does naturally).
pub struct SlotLease<T: Send + Sync + 'static> {
    value: Arc<T>,
    index: usize,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl<T: Send + Sync + 'static> std::ops::Deref for SlotLease<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T: Send + Sync + 'static> Drop for SlotLease<T> {
    fn drop(&mut self) {
        SLOT_LEASES.with(|leases| {
            if let Some(held) = leases.borrow_mut().get_mut(&TypeId::of::<T>()) {
                if let Some(flag) = held.get_mut(self.index) {
                    *flag = false;
                }
            }
        });
    }
}

impl Team {
    /// Creates a team for the given topology.
    pub fn new(topo: Topology) -> Arc<Team> {
        let n = topo.ranks();
        Arc::new(Team {
            topo,
            barrier: AbortableBarrier::new(n),
            barrier_counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            fault_armed: AtomicBool::new(false),
            fault_plans: Mutex::new(Vec::new()),
            conformance: ConformanceState::new(n),
            stats: (0..n).map(|_| CommStats::default()).collect(),
            share_slot: Mutex::new(None),
            reduce_u64: (0..n).map(|_| AtomicU64::new(0)).collect(),
            reduce_f64: (0..n).map(|_| AtomicU64::new(0)).collect(),
            reusable_slots: Mutex::new(HashMap::new()),
            hierarchical_exchange: AtomicBool::new(false),
        })
    }

    /// Switches the exchange layer between the flat rank-to-rank all-to-all
    /// (`false`, the default and ablation baseline) and two-level node-leader
    /// routing (`true`). Must not be flipped from inside an SPMD region:
    /// every rank of a collective phase has to construct its aggregators
    /// under the same mode. On a single-node topology the two modes behave
    /// identically (every destination is on-node, so no payload ever takes
    /// the leader path).
    pub fn set_hierarchical_exchange(&self, on: bool) {
        self.hierarchical_exchange.store(on, Ordering::Relaxed);
    }

    /// Whether aggregated exchanges currently route through node leaders.
    pub fn hierarchical_exchange(&self) -> bool {
        self.hierarchical_exchange.load(Ordering::Relaxed)
    }

    /// Leases the team's reusable shared value of type `T`, creating it with
    /// `make` on first use. Unlike [`Ctx::share`] this performs no barriers:
    /// whichever rank arrives first creates the value under the slot lock, so
    /// `make` must be deterministic given the team (all current uses are
    /// empty per-rank mailbox arrays). Two collectives of the same type that
    /// are live at the same time receive *distinct* pooled instances: each
    /// rank tracks which lease indices it currently holds (thread-locally)
    /// and takes the lowest free one, and because SPMD ranks acquire and
    /// release leases in identical program order, every rank of a collective
    /// agrees on the instance. The caller must leave the value in a neutral
    /// state when its collective phase ends, since the same instance is
    /// handed out again for the next phase.
    pub fn reusable_slot<T, F>(&self, make: F) -> SlotLease<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        let index = SLOT_LEASES.with(|leases| {
            let mut map = leases.borrow_mut();
            let held = map.entry(TypeId::of::<T>()).or_default();
            match held.iter().position(|h| !h) {
                Some(i) => {
                    held[i] = true;
                    i
                }
                None => {
                    held.push(true);
                    held.len() - 1
                }
            }
        });
        let mut slots = self.reusable_slots.lock();
        let entry = slots
            .entry((TypeId::of::<T>(), index))
            .or_insert_with(|| Arc::new(make()) as Arc<dyn Any + Send + Sync>);
        let value = Arc::clone(entry)
            .downcast::<T>()
            // lint: allow(unwrap): the map key *is* the TypeId, so the downcast cannot fail
            .expect("reusable slot keyed by TypeId");
        SlotLease {
            value,
            index,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Convenience: a team of `ranks` ranks on a single simulated node.
    pub fn single_node(ranks: usize) -> Arc<Team> {
        Team::new(Topology::single_node(ranks))
    }

    /// The team topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.topo.ranks()
    }

    /// Per-rank statistics (indexed by rank).
    pub fn stats(&self, rank: usize) -> &CommStats {
        &self.stats[rank]
    }

    /// Sum of all ranks' statistics.
    pub fn stats_total(&self) -> StatsSnapshot {
        self.stats
            .iter()
            .map(|s| s.snapshot())
            .fold(StatsSnapshot::default(), |acc, s| acc.add(&s))
    }

    /// Per-rank snapshots.
    pub fn stats_per_rank(&self) -> Vec<StatsSnapshot> {
        self.stats.iter().map(|s| s.snapshot()).collect()
    }

    /// Resets all ranks' statistics.
    pub fn reset_stats(&self) {
        for s in &self.stats {
            s.reset();
        }
    }

    /// Arms (or with `None`, disarms) a [`FaultPlan`] for the next SPMD run.
    /// Must not be flipped from inside an SPMD region. Barrier counts are
    /// team-lifetime, so a plan's `after_barriers` is relative to the team's
    /// creation, not to the next `run` call; fault harnesses use a fresh team
    /// per run. Once a fault fires the team's barrier stays poisoned — the
    /// team must be discarded, mirroring a real job whose process died.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        match plan {
            Some(p) => self.set_fault_plans(&[p]),
            None => self.set_fault_plans(&[]),
        }
    }

    /// Arms several [`FaultPlan`]s at once (multi-kill runs: e.g. two ranks
    /// dying at different barriers, or two ranks at the same barrier). The
    /// same caveats as [`Team::set_fault_plan`] apply; an empty slice
    /// disarms. The first plan to fire poisons the barrier, so later plans
    /// whose ranks never reach their barrier are moot.
    pub fn set_fault_plans(&self, plans: &[FaultPlan]) {
        *self.fault_plans.lock() = plans.to_vec();
        self.fault_armed.store(!plans.is_empty(), Ordering::SeqCst);
    }

    /// Turns runtime collective-conformance checking on or off for this team
    /// (see [`crate::conformance`]). Defaults to on under
    /// `cfg(debug_assertions)` and off in release; `MHM_CONFORMANCE=1|0`
    /// overrides the default at team creation. Must not be flipped from
    /// inside an SPMD region: ranks mid-phase would disagree on whether their
    /// traces are being kept.
    pub fn set_conformance_checking(&self, on: bool) {
        self.conformance.set_enabled(on);
    }

    /// Whether collective-conformance checking is currently enabled.
    pub fn conformance_checking(&self) -> bool {
        self.conformance.enabled()
    }

    /// `(lifetime collective-op count, schedule digest)` for `rank`. Digests
    /// advance on every collective even with checking disabled, so release
    /// runs still produce meaningful checkpoint stamps.
    pub fn conformance_stamp(&self, rank: usize) -> (u64, u64) {
        self.conformance.stamp(rank)
    }

    /// Barriers entered so far by `rank` (team-lifetime count).
    pub fn barriers_entered(&self, rank: usize) -> u64 {
        self.barrier_counts[rank].load(Ordering::Relaxed)
    }

    /// Runs `f` SPMD-style: one thread per rank, all executing the same
    /// closure with their own [`Ctx`]. Returns the per-rank results in rank
    /// order. Panics in any rank propagate (including injected faults).
    pub fn run<R, F>(self: &Arc<Self>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Ctx) -> R + Send + Sync,
    {
        match self.try_run(f) {
            Ok(out) => out,
            Err(fault) => panic!("SPMD rank panicked: {fault}"),
        }
    }

    /// Like [`Team::run`], but an injected [`FaultPlan`] kill is returned as
    /// `Err(RankFault)` instead of panicking, so a harness can observe the
    /// crash and drive a restart. Any rank panic (injected or not) poisons
    /// the team barrier, so the surviving ranks abort instead of deadlocking
    /// on a collective the dead rank will never join; their collateral aborts
    /// are swallowed. A genuine (non-injected) panic still propagates with
    /// its original payload.
    pub fn try_run<R, F>(self: &Arc<Self>, f: F) -> Result<Vec<R>, RankFault>
    where
        R: Send,
        F: Fn(&Ctx) -> R + Send + Sync,
    {
        install_fault_panic_hook();
        let n = self.ranks();
        let f = &f;
        let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let team = Arc::clone(self);
                handles.push(scope.spawn(move || {
                    let ctx = Ctx { rank, team: &team };
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&ctx)));
                    match out {
                        Ok(v) => v,
                        Err(payload) => {
                            // Unblock everyone stuck waiting for this rank.
                            team.barrier.poison();
                            std::panic::resume_unwind(payload);
                        }
                    }
                }));
            }
            handles.into_iter().map(|h| h.join()).collect()
        });
        let mut fault: Option<RankFault> = None;
        let mut other: Option<Box<dyn Any + Send>> = None;
        let mut ok = Vec::with_capacity(n);
        for result in results {
            match result {
                Ok(v) => ok.push(v),
                Err(payload) => {
                    if let Some(rf) = payload.downcast_ref::<RankFault>() {
                        fault.get_or_insert_with(|| rf.clone());
                    } else if payload.downcast_ref::<BarrierPoisoned>().is_none() {
                        other.get_or_insert(payload);
                    }
                }
            }
        }
        if let Some(payload) = other {
            // A real bug outranks an injected fault: re-raise it.
            std::panic::resume_unwind(payload);
        }
        match fault {
            Some(rf) => Err(rf),
            None => {
                // Every lost rank must be accounted for by a fault or a
                // genuine panic. A short result vector here means a rank
                // aborted on a poisoned barrier while the originating panic
                // payload was lost — never silently return partial results.
                assert!(
                    ok.len() == n,
                    "SPMD run lost {} rank result(s) without a recorded fault: \
                     a rank aborted on a poisoned barrier but the originating \
                     panic was swallowed",
                    n - ok.len()
                );
                Ok(ok)
            }
        }
    }
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("topology", &self.topo)
            .finish_non_exhaustive()
    }
}

/// RAII registration of a *local phase* (see [`Ctx::begin_local_phase`]):
/// while alive, one-sided traffic from other ranks against this rank's shard
/// of the tokened object is flagged by [`Ctx::check_one_sided_target`].
/// Dropping the guard ends the phase.
pub struct LocalPhaseGuard {
    team: Arc<Team>,
    rank: usize,
    token: usize,
}

impl Drop for LocalPhaseGuard {
    fn drop(&mut self) {
        self.team.conformance.end_local_phase(self.rank, self.token);
    }
}

/// Per-rank execution context handed to the SPMD closure.
pub struct Ctx<'t> {
    rank: usize,
    team: &'t Arc<Team>,
}

impl<'t> Ctx<'t> {
    /// This rank's index (UPC's `MYTHREAD`).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks (UPC's `THREADS`).
    #[inline]
    pub fn ranks(&self) -> usize {
        self.team.ranks()
    }

    /// The team this rank belongs to.
    pub fn team(&self) -> &Arc<Team> {
        self.team
    }

    /// The machine topology.
    pub fn topology(&self) -> Topology {
        self.team.topo
    }

    /// This rank's statistics counters.
    pub fn stats(&self) -> &CommStats {
        &self.team.stats[self.rank]
    }

    /// Records a fine-grained access to data owned by `owner_rank`, counting
    /// it as on-node or off-node according to the topology.
    #[inline]
    pub fn record_access(&self, owner_rank: usize) {
        if self.team.topo.same_node(self.rank, owner_rank) {
            self.stats().local_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats().remote_ops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an aggregated message of `bytes` payload to `dest`, splitting
    /// the payload into on-node and off-node bytes according to the topology.
    /// Under hierarchical routing each leg (gather, ship, scatter) is a
    /// message of its own, so the legs' byte classes add up correctly.
    #[inline]
    pub fn record_message(&self, dest: usize, bytes: usize) {
        let s = self.stats();
        s.msgs_sent.fetch_add(1, Ordering::Relaxed);
        s.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        if self.team.topo.same_node(self.rank, dest) {
            s.on_node_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            s.on_node_msgs.fetch_add(1, Ordering::Relaxed);
        } else {
            s.off_node_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            s.off_node_msgs.fetch_add(1, Ordering::Relaxed);
        }
        // The message itself also counts as a (single) remote or local access.
        self.record_access(dest);
    }

    /// Whether this team routes aggregated exchanges through node leaders
    /// (see [`Team::set_hierarchical_exchange`]).
    #[inline]
    pub fn hierarchical_exchange(&self) -> bool {
        self.team.hierarchical_exchange()
    }

    /// Records a global atomic operation.
    #[inline]
    pub fn record_atomic(&self) {
        self.stats().atomic_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the payload of a response leg of an aggregated
    /// request–response exchange (in addition to the ordinary
    /// [`Ctx::record_message`] accounting done by the send itself).
    #[inline]
    pub fn record_rpc_response_bytes(&self, bytes: usize) {
        self.stats()
            .rpc_resp_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records the response leg of a *one-sided* aggregated read: the payload
    /// travels from `src` to this rank, but this rank's thread performs the
    /// transfer the owner's network interface would. The message (and its
    /// response bytes) are therefore attributed to the serving rank `src`,
    /// keeping per-rank traffic breakdowns faithful.
    pub fn record_rpc_response_from(&self, src: usize, bytes: usize) {
        let s = &self.team.stats[src];
        s.msgs_sent.fetch_add(1, Ordering::Relaxed);
        s.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        s.rpc_resp_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        if self.team.topo.same_node(src, self.rank) {
            s.on_node_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            s.on_node_msgs.fetch_add(1, Ordering::Relaxed);
            s.local_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            s.off_node_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            s.off_node_msgs.fetch_add(1, Ordering::Relaxed);
            s.remote_ops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one completed aggregated request–response round trip.
    #[inline]
    pub fn record_rpc_round_trip(&self) {
        self.stats().rpc_round_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the payload of one packed supermer record shipped by
    /// supermer-routed k-mer analysis (in addition to the ordinary
    /// [`Ctx::record_message`] accounting done when the carrying blob is
    /// flushed).
    #[inline]
    pub fn record_supermer_bytes(&self, bytes: usize) {
        self.stats()
            .supermer_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one collective endpoint-exchange round of the segment-stitching
    /// traversal. Call on rank 0 only, so that a team-summed snapshot reads
    /// directly as "number of stitch rounds".
    #[inline]
    pub fn record_traversal_round(&self) {
        self.stats()
            .traversal_rounds
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records the payload of one segment-stitching exchange item (endpoint
    /// query, pointer-jump probe or shipped segment record), in addition to
    /// the ordinary aggregated-message accounting.
    #[inline]
    pub fn record_stitch_bytes(&self, bytes: usize) {
        self.stats()
            .stitch_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records the current contig bytes resident on this rank (owned shard of
    /// the distributed contig store plus reader caches, or the replicated
    /// `ContigSet` when the store is disabled). Keeps the running peak.
    #[inline]
    pub fn record_contig_resident(&self, bytes: usize) {
        self.stats()
            .contig_bytes_resident
            .fetch_max(bytes as u64, Ordering::Relaxed);
    }

    /// Records packed contig bytes fetched from remote shards of the
    /// distributed contig store (cache-miss fills), in addition to the
    /// ordinary aggregated-message accounting.
    #[inline]
    pub fn record_contig_fetch_bytes(&self, bytes: usize) {
        self.stats()
            .contig_fetch_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records the current read bytes resident on this rank (owned shard of
    /// the distributed read store plus reader caches, or the replicated
    /// `ReadLibrary` when the store is disabled). Keeps the running peak.
    #[inline]
    pub fn record_read_resident(&self, bytes: usize) {
        self.stats()
            .read_bytes_resident
            .fetch_max(bytes as u64, Ordering::Relaxed);
    }

    /// Records packed read-block bytes fetched from remote shards of the
    /// distributed read store (cache-miss fills), in addition to the ordinary
    /// aggregated-message accounting.
    #[inline]
    pub fn record_read_fetch_bytes(&self, bytes: usize) {
        self.stats()
            .read_fetch_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records `n` software-cache hits on this rank.
    #[inline]
    pub fn record_cache_hits(&self, n: u64) {
        self.stats().cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` software-cache misses on this rank.
    #[inline]
    pub fn record_cache_misses(&self, n: u64) {
        self.stats().cache_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one software-cache eviction on this rank.
    #[inline]
    pub fn record_cache_eviction(&self) {
        self.stats().cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one collective entry for this rank: folds the descriptor into
    /// the rank's schedule digest (always) and appends it to the conformance
    /// trace (when checking is enabled). Collective entry points call this
    /// with their `#[track_caller]` caller location as the site.
    #[inline]
    pub(crate) fn record_collective(
        &self,
        kind: OpKind,
        site: &'static Location<'static>,
        payload: &'static str,
        elem_size: usize,
    ) {
        self.team.conformance.record(
            self.rank,
            OpRecord {
                kind,
                site,
                payload,
                elem_size,
            },
        );
    }

    /// Registers the start of a *local phase* over the object identified by
    /// `token` (conventionally the protected object's shared address):
    /// until the returned guard drops, one-sided ops from other ranks that
    /// target this rank's shard of that object are conformance violations.
    /// The call site is captured for the diagnostic.
    #[track_caller]
    pub fn begin_local_phase(&self, token: usize) -> LocalPhaseGuard {
        self.team
            .conformance
            .begin_local_phase(self.rank, token, Location::caller());
        LocalPhaseGuard {
            team: Arc::clone(self.team),
            rank: self.rank,
            token,
        }
    }

    /// Conformance check for one-sided ops: panics (naming both call sites)
    /// if `owner` currently holds a local phase for `token` — i.e. the target
    /// shard is inside a `local_view`-style region and must not be probed
    /// remotely. No-op when conformance checking is disabled.
    #[track_caller]
    pub fn check_one_sided_target(&self, owner: usize, token: usize) {
        if !self.team.conformance.enabled() {
            return;
        }
        if let Some(held) = self.team.conformance.local_phase_site(owner, token) {
            panic!(
                "one-sided op from rank {} @ {} targets rank {owner}'s shard while a \
                 local_view phase holds it (phase began @ {held}); finish or drop the \
                 local view before issuing remote traffic against that shard",
                self.rank,
                Location::caller(),
            );
        }
    }

    /// Blocks until every rank has reached the barrier. If a [`FaultPlan`]
    /// names this rank and its barrier count is up, the rank dies here
    /// instead (poisoning the barrier so the other ranks abort rather than
    /// wait forever). Panics with the internal `BarrierPoisoned` payload if
    /// another rank has already died.
    ///
    /// When conformance checking is enabled, the last rank to arrive
    /// cross-checks every rank's collective trace (see
    /// [`crate::conformance`]) and fails the run on divergence.
    #[track_caller]
    pub fn barrier(&self) {
        self.record_collective(OpKind::Barrier, Location::caller(), "", 0);
        let entered = self.team.barrier_counts[self.rank].fetch_add(1, Ordering::Relaxed) + 1;
        if self.team.fault_armed.load(Ordering::Relaxed) {
            let fires = {
                let plans = self.team.fault_plans.lock();
                plans
                    .iter()
                    .any(|p| p.rank == self.rank && entered > p.after_barriers)
            };
            if fires {
                self.team.barrier.poison();
                std::panic::panic_any(RankFault {
                    rank: self.rank,
                    barriers_entered: entered - 1,
                });
            }
        }
        let team = self.team;
        if team.conformance.enabled() {
            team.barrier.wait_with(|| {
                let counts: Vec<u64> = team
                    .barrier_counts
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect();
                team.conformance.cross_check(&counts)
            });
        } else {
            team.barrier.wait();
        }
    }

    /// Barriers this rank has entered so far (team-lifetime count). All ranks
    /// execute the same collective sequence, so at any collective point every
    /// rank reports the same number — making it a deterministic address for
    /// [`FaultPlan`] placement.
    pub fn barriers_entered(&self) -> u64 {
        self.team.barrier_counts[self.rank].load(Ordering::Relaxed)
    }

    /// Collective: rank 0 evaluates `make` once, every rank receives a clone
    /// of the resulting `Arc`. Must be called by all ranks (it contains
    /// barriers).
    #[track_caller]
    pub fn share<T, F>(&self, make: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        self.record_collective(
            OpKind::Share,
            Location::caller(),
            std::any::type_name::<T>(),
            std::mem::size_of::<T>(),
        );
        if self.rank == 0 {
            let value: Arc<T> = Arc::new(make());
            *self.team.share_slot.lock() = Some(value.clone() as Arc<dyn Any + Send + Sync>);
        }
        self.barrier();
        let out = {
            let slot = self.team.share_slot.lock();
            // lint: allow(unwrap): barrier above guarantees rank 0 published
            let any = slot.as_ref().expect("share slot populated by rank 0");
            Arc::clone(any)
                .downcast::<T>()
                // lint: allow(unwrap): conformance checker reports this divergence first
                .expect("share type mismatch across ranks")
        };
        self.barrier();
        if self.rank == 0 {
            *self.team.share_slot.lock() = None;
        }
        out
    }

    /// Collective broadcast of a cloneable value from rank 0.
    #[track_caller]
    pub fn broadcast<T, F>(&self, make: F) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        (*self.share(make)).clone()
    }

    #[track_caller]
    fn reduce_u64_with(&self, value: u64, combine: impl Fn(u64, u64) -> u64) -> u64 {
        self.record_collective(OpKind::ReduceU64, Location::caller(), "u64", 8);
        self.team.reduce_u64[self.rank].store(value, Ordering::SeqCst);
        self.barrier();
        let mut acc = self.team.reduce_u64[0].load(Ordering::SeqCst);
        for r in 1..self.ranks() {
            acc = combine(acc, self.team.reduce_u64[r].load(Ordering::SeqCst));
        }
        self.barrier();
        acc
    }

    /// All-reduce sum over u64 contributions. Collective.
    #[track_caller]
    pub fn allreduce_sum_u64(&self, value: u64) -> u64 {
        self.reduce_u64_with(value, |a, b| a + b)
    }

    /// All-reduce max over u64 contributions. Collective.
    #[track_caller]
    pub fn allreduce_max_u64(&self, value: u64) -> u64 {
        self.reduce_u64_with(value, u64::max)
    }

    /// All-reduce min over u64 contributions. Collective.
    #[track_caller]
    pub fn allreduce_min_u64(&self, value: u64) -> u64 {
        self.reduce_u64_with(value, u64::min)
    }

    /// All-reduce logical OR over boolean contributions. Collective.
    /// This is the "was anything pruned this iteration" reduction of
    /// Algorithm 2.
    #[track_caller]
    pub fn allreduce_any(&self, value: bool) -> bool {
        self.reduce_u64_with(u64::from(value), u64::max) != 0
    }

    #[track_caller]
    fn reduce_f64_with(&self, value: f64, combine: impl Fn(f64, f64) -> f64) -> f64 {
        self.record_collective(OpKind::ReduceF64, Location::caller(), "f64", 8);
        self.team.reduce_f64[self.rank].store(value.to_bits(), Ordering::SeqCst);
        self.barrier();
        let mut acc = f64::from_bits(self.team.reduce_f64[0].load(Ordering::SeqCst));
        for r in 1..self.ranks() {
            acc = combine(
                acc,
                f64::from_bits(self.team.reduce_f64[r].load(Ordering::SeqCst)),
            );
        }
        self.barrier();
        acc
    }

    /// All-reduce sum over f64 contributions. Collective.
    #[track_caller]
    pub fn allreduce_sum_f64(&self, value: f64) -> f64 {
        self.reduce_f64_with(value, |a, b| a + b)
    }

    /// All-reduce max over f64 contributions. Collective.
    #[track_caller]
    pub fn allreduce_max_f64(&self, value: f64) -> f64 {
        self.reduce_f64_with(value, f64::max)
    }

    /// Splits `0..total` into a contiguous chunk per rank (block
    /// distribution); returns this rank's range. The remainder is spread over
    /// the first ranks so chunk sizes differ by at most one.
    pub fn block_range(&self, total: usize) -> std::ops::Range<usize> {
        block_range_for(self.rank, self.ranks(), total)
    }
}

/// The block-distribution helper behind [`Ctx::block_range`], exposed so that
/// non-SPMD code (tests, planners) can compute the same split.
pub fn block_range_for(rank: usize, ranks: usize, total: usize) -> std::ops::Range<usize> {
    let base = total / ranks;
    let rem = total % ranks;
    let start = rank * base + rank.min(rem);
    let len = base + usize::from(rank < rem);
    start..(start + len).min(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reusable_slots_reuse_sequentially_and_split_concurrently() {
        let team = Team::single_node(2);
        team.run(|ctx| {
            let t = ctx.team();
            let p1 = {
                let lease = t.reusable_slot(|| vec![1u8]);
                &*lease as *const Vec<u8> as usize
            };
            let p2 = {
                let lease = t.reusable_slot(|| vec![1u8]);
                &*lease as *const Vec<u8> as usize
            };
            assert_eq!(p1, p2, "sequential leases must reuse the instance");
            let a = t.reusable_slot(|| vec![1u8]);
            let b = t.reusable_slot(|| vec![1u8]);
            assert_ne!(
                &*a as *const Vec<u8>, &*b as *const Vec<u8>,
                "concurrent same-typed leases must not alias"
            );
            drop(b);
            drop(a);
            let p3 = {
                let lease = t.reusable_slot(|| vec![1u8]);
                &*lease as *const Vec<u8> as usize
            };
            assert_eq!(p1, p3, "released leases return to the pool");
        });
    }

    #[test]
    fn spmd_run_returns_rank_ordered_results() {
        let team = Team::single_node(4);
        let out = team.run(|ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn reductions() {
        let team = Team::single_node(4);
        let sums = team.run(|ctx| ctx.allreduce_sum_u64(ctx.rank() as u64 + 1));
        assert!(sums.iter().all(|&s| s == 10));
        let maxs = team.run(|ctx| ctx.allreduce_max_u64(ctx.rank() as u64));
        assert!(maxs.iter().all(|&m| m == 3));
        let mins = team.run(|ctx| ctx.allreduce_min_u64(ctx.rank() as u64 + 5));
        assert!(mins.iter().all(|&m| m == 5));
        let anys = team.run(|ctx| ctx.allreduce_any(ctx.rank() == 2));
        assert!(anys.iter().all(|&b| b));
        let nones = team.run(|ctx| ctx.allreduce_any(false));
        assert!(nones.iter().all(|&b| !b));
        let fsum = team.run(|ctx| ctx.allreduce_sum_f64(0.5 * (ctx.rank() as f64 + 1.0)));
        assert!(fsum.iter().all(|&s| (s - 5.0).abs() < 1e-12));
        let fmax = team.run(|ctx| ctx.allreduce_max_f64(-(ctx.rank() as f64)));
        assert!(fmax.iter().all(|&m| (m - 0.0).abs() < 1e-12));
    }

    #[test]
    fn consecutive_reductions_do_not_interfere() {
        let team = Team::single_node(3);
        let out = team.run(|ctx| {
            let a = ctx.allreduce_sum_u64(1);
            let b = ctx.allreduce_sum_u64(2);
            let c = ctx.allreduce_max_u64(ctx.rank() as u64);
            (a, b, c)
        });
        assert!(out.iter().all(|&(a, b, c)| a == 3 && b == 6 && c == 2));
    }

    #[test]
    fn share_distributes_single_instance() {
        let team = Team::single_node(4);
        let ptrs = team.run(|ctx| {
            let shared = ctx.share(|| vec![1u32, 2, 3]);
            Arc::as_ptr(&shared) as usize
        });
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn broadcast_clones_value() {
        let team = Team::single_node(3);
        let vals = team.run(|ctx| ctx.broadcast(|| String::from("hello")));
        assert!(vals.iter().all(|v| v == "hello"));
    }

    #[test]
    fn block_ranges_partition_exactly() {
        for ranks in 1..7usize {
            for total in [0usize, 1, 5, 16, 97] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for r in 0..ranks {
                    let range = block_range_for(r, ranks, total);
                    assert!(range.start == prev_end);
                    prev_end = range.end;
                    covered += range.len();
                }
                assert_eq!(covered, total, "ranks={ranks} total={total}");
                assert_eq!(prev_end, total);
            }
        }
    }

    #[test]
    fn stats_recording_distinguishes_nodes() {
        let team = Team::new(Topology::new(4, 2));
        team.run(|ctx| {
            // Rank r touches data owned by every rank once.
            for owner in 0..ctx.ranks() {
                ctx.record_access(owner);
            }
            ctx.record_atomic();
        });
        let total = team.stats_total();
        // Each of 4 ranks: 2 local (same node incl. self), 2 remote.
        assert_eq!(total.local_ops, 8);
        assert_eq!(total.remote_ops, 8);
        assert_eq!(total.atomic_ops, 4);
        team.reset_stats();
        assert_eq!(team.stats_total(), StatsSnapshot::default());
    }

    #[test]
    fn record_message_counts_bytes() {
        let team = Team::single_node(2);
        team.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.record_message(1, 256);
            }
        });
        let t = team.stats_total();
        assert_eq!(t.msgs_sent, 1);
        assert_eq!(t.bytes_sent, 256);
        assert_eq!(t.on_node_bytes, 256);
        assert_eq!(t.off_node_bytes, 0);
    }

    #[test]
    fn message_bytes_split_by_node_boundary() {
        let team = Team::new(Topology::new(4, 2));
        team.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.record_message(1, 100); // same node
                ctx.record_message(2, 10); // crosses nodes
            }
            if ctx.rank() == 3 {
                // One-sided response leg served by rank 1 (off-node from 3).
                ctx.record_rpc_response_from(1, 7);
            }
        });
        let t = team.stats_total();
        assert_eq!(t.bytes_sent, 117);
        assert_eq!(t.on_node_bytes, 100);
        assert_eq!(t.off_node_bytes, 17);
        // The response leg is charged to the serving rank.
        let serving = team.stats(1).snapshot();
        assert_eq!(serving.off_node_bytes, 7);
        assert_eq!(serving.rpc_resp_bytes, 7);
    }

    #[test]
    fn fault_plan_kills_the_chosen_rank_at_the_chosen_barrier() {
        let team = Team::single_node(4);
        team.set_fault_plan(Some(FaultPlan {
            rank: 2,
            after_barriers: 3,
        }));
        let out = team.try_run(|ctx| {
            for _ in 0..10 {
                ctx.barrier();
            }
            ctx.barriers_entered()
        });
        assert_eq!(
            out,
            Err(RankFault {
                rank: 2,
                barriers_entered: 3
            })
        );
    }

    #[test]
    fn poisoned_barrier_unblocks_ranks_stuck_in_collectives() {
        // Rank 1 dies before its first barrier; the other ranks are blocked
        // inside `share` (which contains barriers) and must abort, not hang.
        let team = Team::single_node(3);
        team.set_fault_plan(Some(FaultPlan {
            rank: 1,
            after_barriers: 0,
        }));
        let out = team.try_run(|ctx| {
            let v = ctx.share(|| 7u32);
            *v
        });
        assert_eq!(
            out,
            Err(RankFault {
                rank: 1,
                barriers_entered: 0
            })
        );
    }

    #[test]
    fn try_run_without_fault_matches_run() {
        let team = Team::single_node(4);
        let out = team.try_run(|ctx| {
            ctx.barrier();
            ctx.rank() * 10
        });
        assert_eq!(out, Ok(vec![0, 10, 20, 30]));
        assert_eq!(team.barriers_entered(0), 1);
        assert_eq!(team.barriers_entered(3), 1);
    }

    #[test]
    fn barrier_counts_stay_rank_uniform() {
        let team = Team::single_node(3);
        let counts = team.run(|ctx| {
            ctx.allreduce_sum_u64(1);
            ctx.share(|| 0u8);
            ctx.barrier();
            ctx.barriers_entered()
        });
        assert!(counts.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(counts[0], 5); // 2 (reduce) + 2 (share) + 1 (explicit)
    }

    #[test]
    #[should_panic(expected = "genuine bug")]
    fn genuine_panics_still_propagate_through_try_run() {
        let team = Team::single_node(2);
        let _ = team.try_run(|ctx| {
            if ctx.rank() == 1 {
                panic!("genuine bug");
            }
            ctx.barrier();
        });
    }

    #[test]
    fn hierarchical_exchange_flag_defaults_off() {
        let team = Team::new(Topology::new(4, 2));
        assert!(!team.hierarchical_exchange());
        team.set_hierarchical_exchange(true);
        assert!(team.hierarchical_exchange());
        team.run(|ctx| assert!(ctx.hierarchical_exchange()));
        team.set_hierarchical_exchange(false);
        assert!(!team.hierarchical_exchange());
    }

    #[test]
    fn fault_plans_kill_multiple_ranks_at_different_barriers() {
        let team = Team::single_node(4);
        team.set_fault_plans(&[
            FaultPlan {
                rank: 1,
                after_barriers: 2,
            },
            FaultPlan {
                rank: 3,
                after_barriers: 5,
            },
        ]);
        let out = team.try_run(|ctx| {
            for _ in 0..10 {
                ctx.barrier();
            }
        });
        // Rank 1 dies first and poisons the barrier, so rank 3 never survives
        // to its own kill point; the reported fault is deterministic.
        assert_eq!(
            out.unwrap_err(),
            RankFault {
                rank: 1,
                barriers_entered: 2
            }
        );
    }

    #[test]
    fn fault_plans_can_kill_two_ranks_at_the_same_barrier() {
        let team = Team::single_node(4);
        team.set_fault_plans(&[
            FaultPlan {
                rank: 0,
                after_barriers: 1,
            },
            FaultPlan {
                rank: 2,
                after_barriers: 1,
            },
        ]);
        let out = team.try_run(|ctx| {
            for _ in 0..4 {
                ctx.barrier();
            }
        });
        let fault = out.unwrap_err();
        assert!(fault.rank == 0 || fault.rank == 2, "unexpected {fault:?}");
        assert_eq!(fault.barriers_entered, 1);
    }

    #[test]
    fn kill_at_the_first_barrier_races_setup_cleanly() {
        // The victim dies at its very first barrier, typically while some
        // rank threads are still being spawned by `try_run`; late starters
        // must abort on the poisoned barrier, never deadlock or lose the
        // fault. Repeat to sample a few spawn schedules.
        for _ in 0..8 {
            let team = Team::single_node(8);
            team.set_fault_plans(&[FaultPlan {
                rank: 7,
                after_barriers: 0,
            }]);
            let out = team.try_run(|ctx| {
                ctx.barrier();
                ctx.allreduce_sum_u64(1)
            });
            assert_eq!(
                out.unwrap_err(),
                RankFault {
                    rank: 7,
                    barriers_entered: 0
                }
            );
        }
    }

    #[test]
    #[should_panic(expected = "conformance violation")]
    fn rank_skewed_extra_barrier_is_caught_at_the_rendezvous() {
        let team = Team::single_node(2);
        team.set_conformance_checking(true);
        team.run(|ctx| {
            if ctx.rank() == 1 {
                ctx.barrier(); // seeded violation: rank 1 sneaks in an extra barrier
            }
            ctx.barrier();
            ctx.barrier();
        });
    }

    #[test]
    #[should_panic(expected = "conformance violation")]
    fn mismatched_share_payload_shape_is_caught() {
        let team = Team::single_node(2);
        team.set_conformance_checking(true);
        team.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.share(|| 1u64);
            } else {
                ctx.share(|| 1u32);
            }
        });
    }

    #[test]
    #[should_panic(expected = "local_view phase holds it")]
    fn one_sided_op_into_a_held_local_phase_is_caught() {
        let team = Team::single_node(2);
        team.set_conformance_checking(true);
        team.run(|ctx| {
            let token = 0xFEED;
            let guard = (ctx.rank() == 0).then(|| ctx.begin_local_phase(token));
            ctx.barrier();
            if ctx.rank() == 1 {
                ctx.check_one_sided_target(0, token);
            }
            ctx.barrier();
            drop(guard);
        });
    }

    #[test]
    fn dropping_the_local_phase_guard_ends_the_phase() {
        let team = Team::single_node(2);
        team.set_conformance_checking(true);
        team.run(|ctx| {
            let token = 0xBEEF;
            let guard = (ctx.rank() == 0).then(|| ctx.begin_local_phase(token));
            ctx.barrier();
            drop(guard);
            ctx.barrier();
            // Phase over on every rank: remote traffic is legal again.
            ctx.check_one_sided_target(0, token);
        });
    }

    #[test]
    fn conformance_stamps_are_rank_uniform_for_conforming_runs() {
        let team = Team::single_node(3);
        team.run(|ctx| {
            ctx.barrier();
            ctx.allreduce_sum_u64(ctx.rank() as u64);
            ctx.share(|| 3u8);
        });
        let s0 = team.conformance_stamp(0);
        assert!(s0.0 > 0, "collectives must advance the op count");
        for r in 1..3 {
            assert_eq!(team.conformance_stamp(r), s0, "rank {r} stamp diverged");
        }
    }
}
