//! A simulated PGAS (UPC-like) SPMD runtime.
//!
//! MetaHipMer is written in Unified Parallel C: `THREADS` ranks execute the
//! same program, share a partitioned global address space, and communicate
//! with one-sided puts/gets, remote atomics and collectives. This crate
//! reproduces that execution model on a single machine:
//!
//! * a [`Topology`] groups P *ranks* into simulated *nodes* (so that on-node
//!   vs off-node traffic can be distinguished, exactly the quantity the
//!   paper's read-localisation optimisation targets);
//! * a [`Team`] runs an SPMD closure on one OS thread per rank and provides
//!   the collectives the pipeline needs: barrier, broadcast/share, all-reduce
//!   and an aggregated all-to-all [`exchange::Aggregator`] that models UPC's
//!   "aggregated, asynchronous one-sided messages";
//! * an aggregated request–response layer, [`exchange::RpcAggregator`] /
//!   [`Ctx::exchange_map`], that buffers typed *lookup* requests per owner
//!   rank, ships them in large messages, applies an owner-side handler and
//!   routes the responses back in a second aggregated all-to-all — the
//!   batched-gets side of the paper's communication optimisation (use case 3
//!   of §II-A), with round trips and response bytes accounted;
//! * per-rank [`stats::CommStats`] account for every simulated remote access,
//!   message, atomic and software-cache hit so experiments can report
//!   communication volumes alongside wall-clock times;
//! * [`work::DynamicBlocks`] implements the single-global-atomic dynamic
//!   work-stealing scheme of §II-G.
//!
//! The runtime intentionally exposes the same *use sites* as UPC code: all
//! higher-level crates (distributed hash tables, k-mer analysis, alignment,
//! scaffolding) are written against `Ctx` the way the paper's algorithms are
//! written against UPC, so the parallel structure of the original is preserved
//! even though ranks are threads rather than processes.

pub mod conformance;
pub mod exchange;
pub mod stats;
pub mod team;
pub mod topology;
pub mod work;

pub use conformance::{OpKind, OpRecord};
pub use exchange::{Aggregator, AllToAll, Blob, BlobAggregator, RpcAggregator};
pub use stats::{CommStats, StatsSnapshot};
pub use team::{
    install_panic_accounting, unexpected_panics, Ctx, FaultPlan, LocalPhaseGuard, RankFault,
    SlotLease, Team,
};
pub use topology::Topology;
pub use work::DynamicBlocks;
