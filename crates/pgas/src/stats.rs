//! Per-rank communication and memory-system accounting.
//!
//! UPC runs on a real interconnect; our ranks are threads, so wall-clock alone
//! would hide communication effects such as the read-localisation optimisation
//! of §II-I (whose benefit is *fewer off-node seed lookups* and *better cache
//! reuse*). Every simulated remote operation is therefore counted here, and the
//! experiment harnesses report these counters next to the timings.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic per-rank counters. Padded to a cache line to avoid false sharing
/// between ranks that update their own counters concurrently.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CommStats {
    /// Aggregated messages sent (one per flushed batch).
    pub msgs_sent: AtomicU64,
    /// Payload bytes across all sent messages.
    pub bytes_sent: AtomicU64,
    /// Payload bytes of messages whose destination rank shares the sender's
    /// simulated node (shared-memory transfers; a subset of `bytes_sent`).
    pub on_node_bytes: AtomicU64,
    /// Payload bytes of messages that crossed a node boundary (interconnect
    /// transfers; `on_node_bytes + off_node_bytes == bytes_sent`).
    pub off_node_bytes: AtomicU64,
    /// Aggregated messages whose destination shares the sender's node
    /// (`on_node_msgs + off_node_msgs == msgs_sent`).
    pub on_node_msgs: AtomicU64,
    /// Aggregated messages that crossed a node boundary — the interconnect
    /// injection count the two-level exchange reduces.
    pub off_node_msgs: AtomicU64,
    /// Fine-grained operations that targeted data owned by a rank on another
    /// simulated node.
    pub remote_ops: AtomicU64,
    /// Fine-grained operations that stayed within the simulated node.
    pub local_ops: AtomicU64,
    /// Global atomic operations (compare-and-swap, fetch-add on shared state).
    pub atomic_ops: AtomicU64,
    /// Software-cache hits (read-only phase of the distributed hash tables).
    pub cache_hits: AtomicU64,
    /// Software-cache misses.
    pub cache_misses: AtomicU64,
    /// Work blocks obtained through the dynamic work-stealing counter beyond
    /// the rank's initial block.
    pub steals: AtomicU64,
    /// Completed aggregated request–response round trips (batched lookups).
    pub rpc_round_trips: AtomicU64,
    /// Payload bytes of the response legs of aggregated request–response
    /// exchanges (a subset of `bytes_sent`, recorded on the serving rank).
    pub rpc_resp_bytes: AtomicU64,
    /// Software-cache evictions (entries displaced by the capacity bound).
    pub cache_evictions: AtomicU64,
    /// Payload bytes of packed supermer records shipped by supermer-routed
    /// k-mer analysis (a subset of `bytes_sent`, recorded on the sender).
    pub supermer_bytes: AtomicU64,
    /// Collective endpoint-exchange rounds performed by the segment-stitching
    /// contig traversal (pred resolution + pointer-jumping + assembly).
    /// Recorded on rank 0 only, so a summed snapshot reads as "rounds".
    pub traversal_rounds: AtomicU64,
    /// Payload bytes of segment-stitching exchanges during traversal (a
    /// subset of `bytes_sent`, recorded on the sender).
    pub stitch_bytes: AtomicU64,
    /// Peak contig bytes resident on this rank: the owned shard of the
    /// distributed contig store plus the rank's reader cache (packed bytes),
    /// or the full replicated `ContigSet` (raw bytes) when the distributed
    /// store is disabled. Updated with a running max, not a sum.
    pub contig_bytes_resident: AtomicU64,
    /// Packed contig bytes fetched from remote shards of the distributed
    /// contig store (cache-miss fills; a measure of contig read traffic).
    pub contig_fetch_bytes: AtomicU64,
    /// Peak read bytes resident on this rank: the owned shard of the
    /// distributed read store plus the rank's reader cache (packed bytes), or
    /// the full replicated `ReadLibrary` (raw seq+qual bytes) when the
    /// distributed store is disabled. Updated with a running max, not a sum.
    pub read_bytes_resident: AtomicU64,
    /// Packed read-block bytes fetched from remote shards of the distributed
    /// read store (cache-miss fills; a measure of read fetch traffic).
    pub read_fetch_bytes: AtomicU64,
}

impl CommStats {
    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.msgs_sent.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.on_node_bytes.store(0, Ordering::Relaxed);
        self.off_node_bytes.store(0, Ordering::Relaxed);
        self.on_node_msgs.store(0, Ordering::Relaxed);
        self.off_node_msgs.store(0, Ordering::Relaxed);
        self.remote_ops.store(0, Ordering::Relaxed);
        self.local_ops.store(0, Ordering::Relaxed);
        self.atomic_ops.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.rpc_round_trips.store(0, Ordering::Relaxed);
        self.rpc_resp_bytes.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.supermer_bytes.store(0, Ordering::Relaxed);
        self.traversal_rounds.store(0, Ordering::Relaxed);
        self.stitch_bytes.store(0, Ordering::Relaxed);
        self.contig_bytes_resident.store(0, Ordering::Relaxed);
        self.contig_fetch_bytes.store(0, Ordering::Relaxed);
        self.read_bytes_resident.store(0, Ordering::Relaxed);
        self.read_fetch_bytes.store(0, Ordering::Relaxed);
    }

    /// Takes a plain-value snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            on_node_bytes: self.on_node_bytes.load(Ordering::Relaxed),
            off_node_bytes: self.off_node_bytes.load(Ordering::Relaxed),
            on_node_msgs: self.on_node_msgs.load(Ordering::Relaxed),
            off_node_msgs: self.off_node_msgs.load(Ordering::Relaxed),
            remote_ops: self.remote_ops.load(Ordering::Relaxed),
            local_ops: self.local_ops.load(Ordering::Relaxed),
            atomic_ops: self.atomic_ops.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            rpc_round_trips: self.rpc_round_trips.load(Ordering::Relaxed),
            rpc_resp_bytes: self.rpc_resp_bytes.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            supermer_bytes: self.supermer_bytes.load(Ordering::Relaxed),
            traversal_rounds: self.traversal_rounds.load(Ordering::Relaxed),
            stitch_bytes: self.stitch_bytes.load(Ordering::Relaxed),
            contig_bytes_resident: self.contig_bytes_resident.load(Ordering::Relaxed),
            contig_fetch_bytes: self.contig_fetch_bytes.load(Ordering::Relaxed),
            read_bytes_resident: self.read_bytes_resident.load(Ordering::Relaxed),
            read_fetch_bytes: self.read_fetch_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`CommStats`], summable across ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub on_node_bytes: u64,
    pub off_node_bytes: u64,
    pub on_node_msgs: u64,
    pub off_node_msgs: u64,
    pub remote_ops: u64,
    pub local_ops: u64,
    pub atomic_ops: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub steals: u64,
    pub rpc_round_trips: u64,
    pub rpc_resp_bytes: u64,
    pub cache_evictions: u64,
    pub supermer_bytes: u64,
    pub traversal_rounds: u64,
    pub stitch_bytes: u64,
    pub contig_bytes_resident: u64,
    pub contig_fetch_bytes: u64,
    pub read_bytes_resident: u64,
    pub read_fetch_bytes: u64,
}

impl StatsSnapshot {
    /// Element-wise sum of two snapshots.
    pub fn add(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            on_node_bytes: self.on_node_bytes + other.on_node_bytes,
            off_node_bytes: self.off_node_bytes + other.off_node_bytes,
            on_node_msgs: self.on_node_msgs + other.on_node_msgs,
            off_node_msgs: self.off_node_msgs + other.off_node_msgs,
            remote_ops: self.remote_ops + other.remote_ops,
            local_ops: self.local_ops + other.local_ops,
            atomic_ops: self.atomic_ops + other.atomic_ops,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            steals: self.steals + other.steals,
            rpc_round_trips: self.rpc_round_trips + other.rpc_round_trips,
            rpc_resp_bytes: self.rpc_resp_bytes + other.rpc_resp_bytes,
            cache_evictions: self.cache_evictions + other.cache_evictions,
            supermer_bytes: self.supermer_bytes + other.supermer_bytes,
            traversal_rounds: self.traversal_rounds + other.traversal_rounds,
            stitch_bytes: self.stitch_bytes + other.stitch_bytes,
            // Summing per-rank residency peaks gives the team-wide resident
            // total (each rank's peak is its own shard + cache).
            contig_bytes_resident: self.contig_bytes_resident + other.contig_bytes_resident,
            contig_fetch_bytes: self.contig_fetch_bytes + other.contig_fetch_bytes,
            read_bytes_resident: self.read_bytes_resident + other.read_bytes_resident,
            read_fetch_bytes: self.read_fetch_bytes + other.read_fetch_bytes,
        }
    }

    /// Difference (`self - other`), saturating at zero; used to measure a
    /// phase by snapshotting before and after.
    pub fn delta_from(&self, before: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            msgs_sent: self.msgs_sent.saturating_sub(before.msgs_sent),
            bytes_sent: self.bytes_sent.saturating_sub(before.bytes_sent),
            on_node_bytes: self.on_node_bytes.saturating_sub(before.on_node_bytes),
            off_node_bytes: self.off_node_bytes.saturating_sub(before.off_node_bytes),
            on_node_msgs: self.on_node_msgs.saturating_sub(before.on_node_msgs),
            off_node_msgs: self.off_node_msgs.saturating_sub(before.off_node_msgs),
            remote_ops: self.remote_ops.saturating_sub(before.remote_ops),
            local_ops: self.local_ops.saturating_sub(before.local_ops),
            atomic_ops: self.atomic_ops.saturating_sub(before.atomic_ops),
            cache_hits: self.cache_hits.saturating_sub(before.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(before.cache_misses),
            steals: self.steals.saturating_sub(before.steals),
            rpc_round_trips: self.rpc_round_trips.saturating_sub(before.rpc_round_trips),
            rpc_resp_bytes: self.rpc_resp_bytes.saturating_sub(before.rpc_resp_bytes),
            cache_evictions: self.cache_evictions.saturating_sub(before.cache_evictions),
            supermer_bytes: self.supermer_bytes.saturating_sub(before.supermer_bytes),
            traversal_rounds: self
                .traversal_rounds
                .saturating_sub(before.traversal_rounds),
            stitch_bytes: self.stitch_bytes.saturating_sub(before.stitch_bytes),
            // A running-max gauge only grows between resets, so the delta is
            // how much the peak rose during the phase.
            contig_bytes_resident: self
                .contig_bytes_resident
                .saturating_sub(before.contig_bytes_resident),
            contig_fetch_bytes: self
                .contig_fetch_bytes
                .saturating_sub(before.contig_fetch_bytes),
            read_bytes_resident: self
                .read_bytes_resident
                .saturating_sub(before.read_bytes_resident),
            read_fetch_bytes: self
                .read_fetch_bytes
                .saturating_sub(before.read_fetch_bytes),
        }
    }

    /// Total fine-grained (per-key) global accesses, local and remote. The
    /// quantity the lookup-aggregation ablation compares against `msgs_sent`.
    pub fn fine_grained_ops(&self) -> u64 {
        self.remote_ops + self.local_ops
    }

    /// Fraction of fine-grained operations that crossed a node boundary.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.remote_ops + self.local_ops;
        if total == 0 {
            0.0
        } else {
            self.remote_ops as f64 / total as f64
        }
    }

    /// Fraction of sent payload bytes that crossed a node boundary — the
    /// quantity the topology ablation tracks (interconnect pressure).
    pub fn off_node_byte_fraction(&self) -> f64 {
        let total = self.on_node_bytes + self.off_node_bytes;
        if total == 0 {
            0.0
        } else {
            self.off_node_bytes as f64 / total as f64
        }
    }

    /// Software-cache hit rate in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Load-balance ratio: average work divided by maximum work across ranks, in
/// `(0, 1]`; 1.0 means perfectly balanced. This is the quantity the paper
/// quotes for the local-assembly stage ("improves load balance from about 0.33
/// to 0.55").
pub fn load_balance_ratio(per_rank_work: &[f64]) -> f64 {
    if per_rank_work.is_empty() {
        return 1.0;
    }
    let max = per_rank_work.iter().cloned().fold(f64::MIN, f64::max);
    if max <= 0.0 {
        return 1.0;
    }
    let avg = per_rank_work.iter().sum::<f64>() / per_rank_work.len() as f64;
    avg / max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = CommStats::default();
        s.msgs_sent.fetch_add(3, Ordering::Relaxed);
        s.bytes_sent.fetch_add(100, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.msgs_sent, 3);
        assert_eq!(snap.bytes_sent, 100);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn add_and_delta() {
        let a = StatsSnapshot {
            msgs_sent: 1,
            bytes_sent: 10,
            on_node_bytes: 4,
            off_node_bytes: 6,
            on_node_msgs: 1,
            off_node_msgs: 0,
            remote_ops: 2,
            local_ops: 3,
            atomic_ops: 4,
            cache_hits: 5,
            cache_misses: 6,
            steals: 7,
            rpc_round_trips: 8,
            rpc_resp_bytes: 9,
            cache_evictions: 10,
            supermer_bytes: 11,
            traversal_rounds: 12,
            stitch_bytes: 13,
            contig_bytes_resident: 14,
            contig_fetch_bytes: 15,
            read_bytes_resident: 16,
            read_fetch_bytes: 17,
        };
        let b = a.add(&a);
        assert_eq!(b.msgs_sent, 2);
        assert_eq!(b.steals, 14);
        let d = b.delta_from(&a);
        assert_eq!(d, a);
    }

    #[test]
    fn ratios() {
        let s = StatsSnapshot {
            remote_ops: 30,
            local_ops: 70,
            cache_hits: 9,
            cache_misses: 1,
            ..Default::default()
        };
        assert!((s.remote_fraction() - 0.3).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(StatsSnapshot::default().remote_fraction(), 0.0);
        assert_eq!(StatsSnapshot::default().cache_hit_rate(), 0.0);
        let b = StatsSnapshot {
            on_node_bytes: 300,
            off_node_bytes: 100,
            ..Default::default()
        };
        assert!((b.off_node_byte_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(StatsSnapshot::default().off_node_byte_fraction(), 0.0);
    }

    #[test]
    fn load_balance() {
        assert!((load_balance_ratio(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((load_balance_ratio(&[4.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(load_balance_ratio(&[]), 1.0);
        assert_eq!(load_balance_ratio(&[0.0, 0.0]), 1.0);
    }
}
