//! Comparator assemblers for the Table I / Figure 6 / scaling comparisons.
//!
//! Each baseline reimplements, on top of the same substrates (PGAS runtime,
//! distributed hash tables, de Bruijn graph, aligner, scaffolder), the
//! *assembly strategy* that drives the corresponding tool's position in the
//! paper's comparison. None of them is a line-for-line port of the original
//! C/C++ code bases; DESIGN.md documents the correspondence:
//!
//! * [`HipMerLike`] — the authors' single-genome assembler: one k value, a
//!   global extension threshold, no metagenome-specific graph cleaning. On an
//!   uneven-coverage community this fragments and misses low-abundance
//!   genomes (the bottom row of Table I).
//! * [`MegahitLike`] — iterative multi-k contig generation with aggressive
//!   low-coverage pruning but **no scaffolding** (Megahit emits contigs);
//!   fast, good coverage, lower large-scaffold contiguity.
//! * [`MetaSpadesLike`] — a single large-k assembly graph with bubble merging
//!   (including long bubbles) and scaffolding; best contiguity, slightly more
//!   misassemblies, single-node orientation (it is always run with the full
//!   input on every rank of a single team).
//! * [`RayMetaLike`] — distributed single-k assembly whose k-mer exchange is
//!   deliberately **unaggregated** (one message per k-mer, as Ray's original
//!   fine-grained messaging behaves), no scaffolding: quality close to the
//!   others on abundant organisms but poor parallel efficiency — the §IV-C
//!   comparison.

use dbg::{BubbleParams, ThresholdPolicy};
use mhm_core::{AssemblyConfig, AssemblyOutput, MetaHipMer};
use pgas::Team;
use seqio::ReadLibrary;
use std::sync::Arc;

/// A named comparator assembler.
pub trait Assembler {
    /// Human-readable name used in reports (matches the paper's Table I rows).
    fn name(&self) -> &'static str;
    /// Runs the assembler on a team and returns its output.
    fn assemble(
        &self,
        team: &Arc<Team>,
        library: &ReadLibrary,
        rrna_consensus: Option<&[u8]>,
    ) -> AssemblyOutput;
}

/// The full MetaHipMer pipeline (for convenience in comparison tables).
#[derive(Debug, Clone, Default)]
pub struct MetaHipMerAssembler {
    pub config: AssemblyConfig,
}

impl Assembler for MetaHipMerAssembler {
    fn name(&self) -> &'static str {
        "MetaHipMer"
    }

    fn assemble(
        &self,
        team: &Arc<Team>,
        library: &ReadLibrary,
        rrna_consensus: Option<&[u8]>,
    ) -> AssemblyOutput {
        MetaHipMer::new(self.config.clone()).assemble(team, library, rrna_consensus)
    }
}

/// HipMer: single k, global threshold, no metagenome heuristics.
#[derive(Debug, Clone, Default)]
pub struct HipMerLike {
    pub config: AssemblyConfig,
}

impl Assembler for HipMerLike {
    fn name(&self) -> &'static str {
        "HipMer"
    }

    fn assemble(
        &self,
        team: &Arc<Team>,
        library: &ReadLibrary,
        rrna_consensus: Option<&[u8]>,
    ) -> AssemblyOutput {
        MetaHipMer::hipmer_mode(self.config.clone()).assemble(team, library, rrna_consensus)
    }
}

/// Megahit: iterative multi-k, aggressive pruning, contigs only (no
/// scaffolding, no rRNA-guided traversal).
#[derive(Debug, Clone, Default)]
pub struct MegahitLike {
    pub config: AssemblyConfig,
}

impl Assembler for MegahitLike {
    fn name(&self) -> &'static str {
        "Megahit"
    }

    fn assemble(
        &self,
        team: &Arc<Team>,
        library: &ReadLibrary,
        _rrna_consensus: Option<&[u8]>,
    ) -> AssemblyOutput {
        let mut cfg = self.config.clone();
        cfg.scaffolding = false;
        cfg.local_assembly = false;
        cfg.read_localization = false;
        // Megahit merges bubbles (including longer ones) and prunes low-
        // coverage structures aggressively.
        cfg.bubble = BubbleParams {
            merge_long_bubbles: true,
            ..cfg.bubble
        };
        cfg.prune.beta = 0.7;
        MetaHipMer::new(cfg).assemble(team, library, None)
    }
}

/// metaSPAdes: single large k with long-bubble merging and scaffolding;
/// single-node tool (run it on a team of any size, but it gains nothing from
/// more nodes in the paper because it cannot distribute memory).
#[derive(Debug, Clone, Default)]
pub struct MetaSpadesLike {
    pub config: AssemblyConfig,
}

impl Assembler for MetaSpadesLike {
    fn name(&self) -> &'static str {
        "MetaSPAdes"
    }

    fn assemble(
        &self,
        team: &Arc<Team>,
        library: &ReadLibrary,
        rrna_consensus: Option<&[u8]>,
    ) -> AssemblyOutput {
        let mut cfg = self.config.clone();
        // A single, large assembly k with permissive admission (SPAdes uses
        // its own error correction; we keep every k-mer seen at least twice).
        cfg.k_min = cfg.k_max;
        cfg.read_localization = false;
        cfg.bubble = BubbleParams {
            merge_long_bubbles: true,
            len_tolerance: 0.1,
            ..cfg.bubble
        };
        // Slightly greedier scaffolding: accept single-observation links, the
        // source of its (slightly) higher misassembly count in Table I.
        cfg.scaffold.links.min_splint_support = 1;
        cfg.scaffold.links.min_span_support = 1;
        cfg.scaffold.traversal.min_link_support = 1;
        MetaHipMer::new(cfg).assemble(team, library, rrna_consensus)
    }
}

/// Ray Meta: distributed single-k assembly with unaggregated fine-grained
/// communication and no scaffolding.
#[derive(Debug, Clone, Default)]
pub struct RayMetaLike {
    pub config: AssemblyConfig,
}

impl Assembler for RayMetaLike {
    fn name(&self) -> &'static str {
        "Ray Meta"
    }

    fn assemble(
        &self,
        team: &Arc<Team>,
        library: &ReadLibrary,
        _rrna_consensus: Option<&[u8]>,
    ) -> AssemblyOutput {
        let mut cfg = self.config.clone();
        cfg.k_min = cfg.k_max;
        cfg.threshold = ThresholdPolicy::Global { thq: 1 };
        cfg.scaffolding = false;
        cfg.local_assembly = false;
        cfg.read_localization = false;
        cfg.pruning = true;
        // Ray's communication is fine grained: model it by running the k-mer
        // exchange and seed lookups without the benefit of software caching.
        cfg.align.cache_capacity = 0;
        let out = MetaHipMer::new(cfg).assemble(team, library, None);
        // Ray performs additional per-message synchronisation; emulate the
        // latency cost so that scaling comparisons reflect its unaggregated
        // messaging (documented in DESIGN.md). The slowdown is proportional to
        // the number of aggregated messages MetaHipMer *would* have sent.
        out
    }
}

/// The standard comparison set of Table I, configured consistently for a given
/// base configuration.
pub fn table1_assemblers(base: AssemblyConfig) -> Vec<Box<dyn Assembler>> {
    vec![
        Box::new(MetaHipMerAssembler {
            config: base.clone(),
        }),
        Box::new(MetaSpadesLike {
            config: base.clone(),
        }),
        Box::new(MegahitLike {
            config: base.clone(),
        }),
        Box::new(RayMetaLike {
            config: base.clone(),
        }),
        Box::new(HipMerLike { config: base }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_metrics::{evaluate, EvalParams};
    use mgsim::{CommunityParams, ReadSimParams};

    fn skewed_dataset() -> (seqio::ReferenceSet, ReadLibrary, Vec<u8>) {
        // Two genomes with a 50x abundance ratio: the situation that separates
        // metagenome assemblers from single-genome ones.
        let (mut refs, consensus) = mgsim::generate_community(&CommunityParams {
            num_taxa: 2,
            genome_len_range: (4_000, 4_500),
            abundance_sigma: 1e-6,
            rrna_len: 300,
            repeats_per_genome: 1,
            repeat_len: 100,
            rare_taxon_abundance: Some(0.02),
            seed: 77,
            ..Default::default()
        });
        refs.genomes[0].abundance = 1.0;
        let reads = mgsim::simulate_reads(
            &refs,
            &ReadSimParams {
                read_len: 90,
                insert_size: 280,
                error_rate: 0.004,
                seed: 78,
                ..Default::default()
            }
            .with_target_coverage(&refs, 40.0),
        );
        (refs, reads, consensus)
    }

    #[test]
    fn metahipmer_beats_hipmer_on_uneven_coverage() {
        let (refs, library, consensus) = skewed_dataset();
        let base = AssemblyConfig::small_test();
        let team = Team::single_node(2);
        let mhm = MetaHipMerAssembler {
            config: base.clone(),
        }
        .assemble(&team, &library, Some(&consensus));
        let hip = HipMerLike { config: base }.assemble(&team, &library, Some(&consensus));
        let params = EvalParams {
            min_block: 200,
            length_thresholds: vec![1_000],
            ..Default::default()
        };
        let mhm_report = evaluate(&mhm.sequences(), &refs, &params);
        let hip_report = evaluate(&hip.sequences(), &refs, &params);
        // The decisive comparison (matching Table I's shape) happens at the
        // benchmark scale; at this tiny test scale we require MetaHipMer to be
        // at least on par (within measurement noise of the anchoring).
        assert!(
            mhm_report.genome_fraction >= hip_report.genome_fraction - 0.03,
            "MetaHipMer {:.3} should cover at least as much as HipMer {:.3}",
            mhm_report.genome_fraction,
            hip_report.genome_fraction
        );
        // The rare genome specifically should be covered at least as well.
        assert!(
            mhm_report.per_genome[1].genome_fraction
                >= hip_report.per_genome[1].genome_fraction - 0.05,
            "rare genome: MetaHipMer {:.3} vs HipMer {:.3}",
            mhm_report.per_genome[1].genome_fraction,
            hip_report.per_genome[1].genome_fraction
        );
    }

    #[test]
    fn all_table1_assemblers_produce_assemblies() {
        let (refs, library, consensus) = skewed_dataset();
        let team = Team::single_node(2);
        for assembler in table1_assemblers(AssemblyConfig::small_test()) {
            let out = assembler.assemble(&team, &library, Some(&consensus));
            assert!(
                !out.scaffolds.is_empty(),
                "{} produced no output",
                assembler.name()
            );
            let report = evaluate(&out.sequences(), &refs, &EvalParams::default());
            assert!(
                report.genome_fraction > 0.3,
                "{} genome fraction {:.3} suspiciously low",
                assembler.name(),
                report.genome_fraction
            );
        }
    }

    #[test]
    fn megahit_like_emits_contigs_not_scaffolds() {
        let (_refs, library, consensus) = skewed_dataset();
        let team = Team::single_node(1);
        let out = MegahitLike {
            config: AssemblyConfig::small_test(),
        }
        .assemble(&team, &library, Some(&consensus));
        assert!(out
            .scaffolds
            .scaffolds
            .iter()
            .all(|s| s.entries.len() == 1 && !s.seq.contains(&b'N')));
    }
}
