//! Minimal FASTA parsing and writing.
//!
//! FASTA is used for reference genomes, contigs and final scaffolds. The
//! parser accepts multi-line sequences, arbitrary description text after the
//! first whitespace in the header, and blank lines.

use std::fmt::Write as _;

/// One FASTA record: a header (without `>`) and its sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Record identifier: header text up to the first whitespace.
    pub id: String,
    /// Full header text after the identifier (may be empty).
    pub description: String,
    /// Sequence bytes, upper-case normalised.
    pub seq: Vec<u8>,
}

/// Parses FASTA text into records.
///
/// Returns an error describing the offending line if the input does not start
/// with a header or contains a record with an empty sequence.
pub fn parse_fasta(text: &str) -> Result<Vec<FastaRecord>, String> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<FastaRecord> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                if rec.seq.is_empty() {
                    return Err(format!("record '{}' has an empty sequence", rec.id));
                }
                records.push(rec);
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            let description = parts.next().unwrap_or("").trim().to_string();
            if id.is_empty() {
                return Err(format!("empty FASTA header at line {}", lineno + 1));
            }
            current = Some(FastaRecord {
                id,
                description,
                seq: Vec::new(),
            });
        } else {
            match current.as_mut() {
                Some(rec) => rec.seq.extend(crate::alphabet::normalize(line.as_bytes())),
                None => {
                    return Err(format!(
                        "sequence data before any FASTA header at line {}",
                        lineno + 1
                    ))
                }
            }
        }
    }
    if let Some(rec) = current {
        if rec.seq.is_empty() {
            return Err(format!("record '{}' has an empty sequence", rec.id));
        }
        records.push(rec);
    }
    Ok(records)
}

/// Writes records as FASTA text with the given line width (0 = single line).
pub fn write_fasta(records: &[FastaRecord], line_width: usize) -> String {
    let mut out = String::new();
    for rec in records {
        if rec.description.is_empty() {
            let _ = writeln!(out, ">{}", rec.id);
        } else {
            let _ = writeln!(out, ">{} {}", rec.id, rec.description);
        }
        if line_width == 0 {
            let _ = writeln!(out, "{}", String::from_utf8_lossy(&rec.seq));
        } else {
            for chunk in rec.seq.chunks(line_width) {
                let _ = writeln!(out, "{}", String::from_utf8_lossy(chunk));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let recs = parse_fasta(">a desc text\nACGT\nacg\n>b\nTTTT\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "a");
        assert_eq!(recs[0].description, "desc text");
        assert_eq!(recs[0].seq, b"ACGTACG".to_vec());
        assert_eq!(recs[1].id, "b");
        assert_eq!(recs[1].description, "");
    }

    #[test]
    fn parse_rejects_headerless_sequence() {
        assert!(parse_fasta("ACGT\n").is_err());
    }

    #[test]
    fn parse_rejects_empty_record() {
        assert!(parse_fasta(">a\n>b\nACGT\n").is_err());
        assert!(parse_fasta(">a\nACGT\n>b\n").is_err());
    }

    #[test]
    fn parse_skips_blank_lines() {
        let recs = parse_fasta("\n>a\n\nAC\nGT\n\n").unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
    }

    #[test]
    fn crlf_and_missing_trailing_newline_parse_clean() {
        // CRLF line endings (Windows-written FASTA) with no trailing newline
        // on the final record: no `\r` may leak into sequences and the last
        // record must not be dropped.
        let text = ">a desc\r\nACGT\r\nGGTT\r\n>b\r\nTTAA";
        let recs = parse_fasta(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, b"ACGTGGTT".to_vec());
        assert_eq!(recs[0].description, "desc");
        assert_eq!(recs[1].id, "b");
        assert_eq!(recs[1].seq, b"TTAA".to_vec());
        assert!(recs.iter().all(|r| !r.seq.contains(&b'\r')));
        // Round trip: re-written text (LF) parses back identically.
        let back = parse_fasta(&write_fasta(&recs, 0)).unwrap();
        assert_eq!(back, recs);
        // Plain LF with a missing trailing newline keeps the last record too.
        let recs2 = parse_fasta(">a\nACGT\n>b\nTTAA").unwrap();
        assert_eq!(recs2.len(), 2);
        assert_eq!(recs2[1].seq, b"TTAA".to_vec());
    }

    #[test]
    fn roundtrip_with_wrapping() {
        let recs = vec![
            FastaRecord {
                id: "x".into(),
                description: "hello".into(),
                seq: b"ACGTACGTACGT".to_vec(),
            },
            FastaRecord {
                id: "y".into(),
                description: "".into(),
                seq: b"TT".to_vec(),
            },
        ];
        for width in [0, 3, 5, 100] {
            let text = write_fasta(&recs, width);
            let back = parse_fasta(&text).unwrap();
            assert_eq!(back, recs, "width {width}");
        }
    }
}
