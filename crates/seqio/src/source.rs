//! Streaming read sources.
//!
//! K-mer analysis consumes reads as a *stream*: it never needs random access,
//! only (possibly repeated) in-order passes over this rank's share of the
//! input. [`ReadSource`] abstracts that contract so the analysis can run
//! unchanged over a replicated slice of [`Read`]s, over id-keyed borrows from
//! a [`ReadLibrary`], or over the owned blocks of a distributed read store
//! that unpacks one block at a time — the bounded-memory ingestion path.

use crate::read::{Read, ReadId, ReadLibrary};

/// A multi-pass stream of this rank's reads.
///
/// `for_each_read` may be called several times (the per-k-mer analysis
/// baseline makes up to three passes); every call must replay the same reads
/// in the same order. Implementations backed by packed storage materialise at
/// most a bounded window of unpacked reads at a time.
pub trait ReadSource {
    /// Calls `f` once per read, in stream order.
    fn for_each_read(&mut self, f: &mut dyn FnMut(&Read));

    /// Sum over the stream of `len.saturating_sub(k - 1)`: the number of
    /// k-mer windows this rank will contribute (Bloom-filter sizing). Must
    /// not require unpacking sequence bytes where length metadata exists.
    fn estimate_kmers(&self, k: usize) -> usize;
}

/// The replicated baseline: a slice of reads already in memory.
impl ReadSource for &[Read] {
    fn for_each_read(&mut self, f: &mut dyn FnMut(&Read)) {
        for read in self.iter() {
            f(read);
        }
    }

    fn estimate_kmers(&self, k: usize) -> usize {
        self.iter().map(|r| r.seq.len().saturating_sub(k - 1)).sum()
    }
}

/// Id-keyed borrows from a replicated [`ReadLibrary`]: streams the reads
/// named by `ids` without cloning them.
pub struct LibraryReads<'a> {
    lib: &'a ReadLibrary,
    ids: &'a [ReadId],
}

impl<'a> LibraryReads<'a> {
    pub fn new(lib: &'a ReadLibrary, ids: &'a [ReadId]) -> Self {
        LibraryReads { lib, ids }
    }
}

impl ReadSource for LibraryReads<'_> {
    fn for_each_read(&mut self, f: &mut dyn FnMut(&Read)) {
        for &id in self.ids {
            f(self.lib.read(id));
        }
    }

    fn estimate_kmers(&self, k: usize) -> usize {
        self.ids
            .iter()
            .map(|&id| self.lib.read(id).len().saturating_sub(k - 1))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> ReadLibrary {
        let mut lib = ReadLibrary::new_paired("lib", 200, 20);
        lib.push_pair(
            Read::with_uniform_quality("a/1", b"ACGTACGT", 35),
            Read::with_uniform_quality("a/2", b"TTGGCCAA", 35),
        );
        lib.push_pair(
            Read::with_uniform_quality("b/1", b"ACGT", 35),
            Read::with_uniform_quality("b/2", b"GG", 35),
        );
        lib
    }

    #[test]
    fn slice_source_streams_in_order_and_estimates() {
        let lib = lib();
        let mut src: &[Read] = &lib.reads;
        let mut seen = Vec::new();
        src.for_each_read(&mut |r| seen.push(r.name.clone()));
        assert_eq!(seen, ["a/1", "a/2", "b/1", "b/2"]);
        // Second pass replays identically.
        let mut again = Vec::new();
        src.for_each_read(&mut |r| again.push(r.name.clone()));
        assert_eq!(again, seen);
        // Windows per read: 4 + 4 for the first pair, the short pair adds 0.
        assert_eq!(src.estimate_kmers(5), 8);
    }

    #[test]
    fn library_ids_source_borrows_by_id() {
        let lib = lib();
        let ids = [2u64, 3, 0];
        let mut src = LibraryReads::new(&lib, &ids);
        let mut seen = Vec::new();
        src.for_each_read(&mut |r| seen.push(r.name.clone()));
        assert_eq!(seen, ["b/1", "b/2", "a/1"]);
        // Windows per streamed id: 2 ("b/1") + 0 ("b/2") + 6 ("a/1").
        assert_eq!(src.estimate_kmers(3), 8);
    }
}
