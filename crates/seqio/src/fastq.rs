//! Minimal FASTQ parsing and writing (Sanger / Phred+33 encoding).
//!
//! FASTQ is the input format for sequencing reads. Each record is four lines:
//! `@name`, sequence, `+`, quality string. Qualities are stored internally as
//! raw Phred scores (already offset-corrected).

use crate::read::{Read, ReadLibrary};
use std::fmt::Write as _;

/// ASCII offset of the Sanger/Illumina-1.8 quality encoding.
pub const PHRED_OFFSET: u8 = 33;

/// One parsed FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    pub name: String,
    pub seq: Vec<u8>,
    /// Raw Phred scores (offset already removed).
    pub qual: Vec<u8>,
}

impl From<FastqRecord> for Read {
    fn from(r: FastqRecord) -> Self {
        Read::new(r.name, &r.seq, &r.qual)
    }
}

/// Parses FASTQ text into records. Errors mention the 1-based record index.
///
/// CRLF line endings are accepted: `str::lines` strips `\r\n` pairs, but a
/// CRLF file whose final record lacks a trailing newline leaves a bare `\r`
/// on its last line (typically the quality string, whose length check would
/// then fail and drop the record) — so every line is additionally stripped of
/// a trailing `\r` here.
pub fn parse_fastq(text: &str) -> Result<Vec<FastqRecord>, String> {
    let mut lines = text
        .lines()
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .filter(|l| !l.is_empty());
    let mut records = Vec::new();
    let mut idx = 0usize;
    while let Some(header) = lines.next() {
        idx += 1;
        let name = header
            .strip_prefix('@')
            .ok_or_else(|| format!("record {idx}: header does not start with '@'"))?
            .to_string();
        let seq = lines
            .next()
            .ok_or_else(|| format!("record {idx}: missing sequence line"))?;
        let plus = lines
            .next()
            .ok_or_else(|| format!("record {idx}: missing '+' line"))?;
        if !plus.starts_with('+') {
            return Err(format!(
                "record {idx}: separator line does not start with '+'"
            ));
        }
        let qual = lines
            .next()
            .ok_or_else(|| format!("record {idx}: missing quality line"))?;
        if qual.len() != seq.len() {
            return Err(format!(
                "record {idx}: quality length {} != sequence length {}",
                qual.len(),
                seq.len()
            ));
        }
        let qual: Vec<u8> = qual
            .bytes()
            .map(|b| {
                if b < PHRED_OFFSET {
                    Err(format!("record {idx}: quality character below '!'"))
                } else {
                    Ok(b - PHRED_OFFSET)
                }
            })
            .collect::<Result<_, _>>()?;
        records.push(FastqRecord {
            name,
            seq: crate::alphabet::normalize(seq.as_bytes()),
            qual,
        });
    }
    Ok(records)
}

/// Writes records as FASTQ text.
pub fn write_fastq(records: &[FastqRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        let _ = writeln!(out, "@{}", rec.name);
        let _ = writeln!(out, "{}", String::from_utf8_lossy(&rec.seq));
        let _ = writeln!(out, "+");
        let qual: String = rec
            .qual
            .iter()
            .map(|&q| (q.min(93) + PHRED_OFFSET) as char)
            .collect();
        let _ = writeln!(out, "{}", qual);
    }
    out
}

/// Serialises a whole read library as interleaved FASTQ.
pub fn library_to_fastq(lib: &ReadLibrary) -> String {
    let recs: Vec<FastqRecord> = lib
        .reads
        .iter()
        .map(|r| FastqRecord {
            name: r.name.clone(),
            seq: r.seq.clone(),
            qual: r.qual.clone(),
        })
        .collect();
    write_fastq(&recs)
}

/// Parses interleaved FASTQ text into a paired read library with the given
/// insert-size model.
pub fn library_from_fastq(
    name: &str,
    text: &str,
    insert_size: usize,
    insert_sd: usize,
) -> Result<ReadLibrary, String> {
    let recs = parse_fastq(text)?;
    if recs.len() % 2 != 0 {
        return Err(format!(
            "interleaved FASTQ must hold an even number of records, got {}",
            recs.len()
        ));
    }
    let mut lib = ReadLibrary::new_paired(name, insert_size, insert_sd);
    let mut it = recs.into_iter();
    while let (Some(a), Some(b)) = (it.next(), it.next()) {
        lib.push_pair(a.into(), b.into());
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "@r1/1\nACGT\n+\nIIII\n@r1/2\nTTGG\n+\n!!II\n";

    #[test]
    fn parse_simple() {
        let recs = parse_fastq(SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "r1/1");
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        assert_eq!(recs[0].qual, vec![40, 40, 40, 40]);
        assert_eq!(recs[1].qual, vec![0, 0, 40, 40]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_fastq("r1\nACGT\n+\nIIII\n").is_err());
        assert!(parse_fastq("@r1\nACGT\nplus\nIIII\n").is_err());
        assert!(parse_fastq("@r1\nACGT\n+\nIII\n").is_err());
        assert!(parse_fastq("@r1\nACGT\n+\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let recs = parse_fastq(SAMPLE).unwrap();
        let text = write_fastq(&recs);
        let back = parse_fastq(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn crlf_and_missing_trailing_newline_parse_clean() {
        // CRLF line endings with no trailing newline on the final record:
        // without explicit `\r` stripping the last quality line keeps a bare
        // `\r`, fails the length check, and the record is lost.
        let text = "@r1/1\r\nACGT\r\n+\r\nIIII\r\n@r1/2\r\nTTGG\r\n+\r\n!!II";
        let recs = parse_fastq(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        assert_eq!(recs[1].seq, b"TTGG".to_vec());
        assert_eq!(recs[1].qual, vec![0, 0, 40, 40]);
        assert!(recs.iter().all(|r| !r.seq.contains(&b'\r')));
        // Round trip through the (LF) writer is lossless.
        let back = parse_fastq(&write_fastq(&recs)).unwrap();
        assert_eq!(back, recs);
        // And the same records parse identically from LF text without a
        // trailing newline.
        let lf = parse_fastq("@r1/1\nACGT\n+\nIIII\n@r1/2\nTTGG\n+\n!!II").unwrap();
        assert_eq!(lf, recs);
    }

    #[test]
    fn library_roundtrip() {
        let lib = library_from_fastq("lib", SAMPLE, 250, 25).unwrap();
        assert_eq!(lib.num_pairs(), 1);
        assert_eq!(lib.insert_size, 250);
        let text = library_to_fastq(&lib);
        let lib2 = library_from_fastq("lib", &text, 250, 25).unwrap();
        assert_eq!(lib2.reads, lib.reads);
    }

    #[test]
    fn odd_record_count_rejected_for_pairs() {
        let text = "@only\nACGT\n+\nIIII\n";
        assert!(library_from_fastq("l", text, 1, 1).is_err());
    }
}
