//! Minimal FASTQ parsing and writing (Sanger / Phred+33 encoding).
//!
//! FASTQ is the input format for sequencing reads. Each record is four lines:
//! `@name`, sequence, `+`, quality string. Qualities are stored internally as
//! raw Phred scores (already offset-corrected).

use crate::read::{Read, ReadLibrary};
use std::fmt::Write as _;

/// ASCII offset of the Sanger/Illumina-1.8 quality encoding.
pub const PHRED_OFFSET: u8 = 33;

/// One parsed FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    pub name: String,
    pub seq: Vec<u8>,
    /// Raw Phred scores (offset already removed).
    pub qual: Vec<u8>,
}

/// A structural defect in FASTQ input — truncated mid-record, malformed
/// lines, quality/sequence disagreement. Typed so callers can match on the
/// failure mode (a streaming ingester may want to distinguish "file cut off
/// mid-record" from "corrupt record") instead of grepping a message; the
/// `Display` form carries the 1-based record index for human consumption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastqError {
    /// The header line does not start with `@`.
    BadHeader { record: usize },
    /// Input ended (or went blank) before the record's sequence line.
    MissingSequence { record: usize },
    /// Input ended before the record's `+` separator line.
    MissingSeparator { record: usize },
    /// The separator line does not start with `+`.
    BadSeparator { record: usize },
    /// Input ended before the record's quality line.
    MissingQuality { record: usize },
    /// The quality line length differs from the sequence length.
    QualityLengthMismatch {
        record: usize,
        qual: usize,
        seq: usize,
    },
    /// A quality character below `!` (not a Phred+33 score).
    QualityOutOfRange { record: usize },
    /// Interleaved pair input held an odd number of records.
    OddRecordCount { records: usize },
}

impl FastqError {
    /// The 1-based index of the offending record (`None` for whole-input
    /// errors such as an odd record count).
    pub fn record(&self) -> Option<usize> {
        match *self {
            FastqError::BadHeader { record }
            | FastqError::MissingSequence { record }
            | FastqError::MissingSeparator { record }
            | FastqError::BadSeparator { record }
            | FastqError::MissingQuality { record }
            | FastqError::QualityLengthMismatch { record, .. }
            | FastqError::QualityOutOfRange { record } => Some(record),
            FastqError::OddRecordCount { .. } => None,
        }
    }
}

impl std::fmt::Display for FastqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FastqError::BadHeader { record } => {
                write!(f, "record {record}: header does not start with '@'")
            }
            FastqError::MissingSequence { record } => {
                write!(f, "record {record}: missing sequence line")
            }
            FastqError::MissingSeparator { record } => {
                write!(f, "record {record}: missing '+' line")
            }
            FastqError::BadSeparator { record } => {
                write!(f, "record {record}: separator line does not start with '+'")
            }
            FastqError::MissingQuality { record } => {
                write!(f, "record {record}: missing quality line")
            }
            FastqError::QualityLengthMismatch { record, qual, seq } => {
                write!(
                    f,
                    "record {record}: quality length {qual} != sequence length {seq}"
                )
            }
            FastqError::QualityOutOfRange { record } => {
                write!(f, "record {record}: quality character below '!'")
            }
            FastqError::OddRecordCount { records } => {
                write!(
                    f,
                    "interleaved FASTQ must hold an even number of records, got {records}"
                )
            }
        }
    }
}

impl std::error::Error for FastqError {}

impl From<FastqError> for String {
    fn from(e: FastqError) -> String {
        e.to_string()
    }
}

impl From<FastqRecord> for Read {
    fn from(r: FastqRecord) -> Self {
        Read::new(r.name, &r.seq, &r.qual)
    }
}

/// Streaming one-record-at-a-time FASTQ cursor over borrowed text.
///
/// CRLF line endings are accepted: `str::lines` strips `\r\n` pairs, but a
/// CRLF file whose final record lacks a trailing newline leaves a bare `\r`
/// on its last line (typically the quality string, whose length check would
/// then fail and drop the record) — so every line is additionally stripped of
/// a trailing `\r` here.
struct RecordParser<'a> {
    lines: std::str::Lines<'a>,
    idx: usize,
}

impl<'a> RecordParser<'a> {
    fn new(text: &'a str) -> Self {
        RecordParser {
            lines: text.lines(),
            idx: 0,
        }
    }

    fn next_line(&mut self) -> Option<&'a str> {
        for l in self.lines.by_ref() {
            let l = l.strip_suffix('\r').unwrap_or(l);
            if !l.is_empty() {
                return Some(l);
            }
        }
        None
    }

    /// Parses the next record, or `None` at end of input. Errors carry the
    /// 1-based record index.
    fn next_record(&mut self) -> Option<Result<FastqRecord, FastqError>> {
        let header = self.next_line()?;
        self.idx += 1;
        Some(self.finish_record(header))
    }

    fn finish_record(&mut self, header: &str) -> Result<FastqRecord, FastqError> {
        let record = self.idx;
        let name = header
            .strip_prefix('@')
            .ok_or(FastqError::BadHeader { record })?
            .to_string();
        let seq = self
            .next_line()
            .ok_or(FastqError::MissingSequence { record })?;
        let plus = self
            .next_line()
            .ok_or(FastqError::MissingSeparator { record })?;
        if !plus.starts_with('+') {
            return Err(FastqError::BadSeparator { record });
        }
        let qual = self
            .next_line()
            .ok_or(FastqError::MissingQuality { record })?;
        if qual.len() != seq.len() {
            return Err(FastqError::QualityLengthMismatch {
                record,
                qual: qual.len(),
                seq: seq.len(),
            });
        }
        let qual: Vec<u8> = qual
            .bytes()
            .map(|b| {
                if b < PHRED_OFFSET {
                    Err(FastqError::QualityOutOfRange { record })
                } else {
                    Ok(b - PHRED_OFFSET)
                }
            })
            .collect::<Result<_, _>>()?;
        Ok(FastqRecord {
            name,
            seq: crate::alphabet::normalize(seq.as_bytes()),
            qual,
        })
    }
}

/// Parses FASTQ text into records. Errors carry the 1-based record index.
/// CRLF line endings and a missing trailing newline are accepted (see
/// [`FastqBlockIter`] for the streaming, bounded-memory variant).
pub fn parse_fastq(text: &str) -> Result<Vec<FastqRecord>, FastqError> {
    let mut parser = RecordParser::new(text);
    let mut records = Vec::new();
    while let Some(rec) = parser.next_record() {
        records.push(rec?);
    }
    Ok(records)
}

/// Streaming FASTQ block iterator: yields records in chunks whose in-memory
/// size (name + seq + qual bytes) is bounded by `max_block_bytes`, without
/// ever materialising the whole file's records at once. With `paired` set
/// (interleaved pair files) a block never splits a read pair: the cut point
/// is deferred to the next even record count, so a pair whose first mate
/// lands exactly on the byte bound is kept whole. This is the ingestion path
/// of the distributed read store: each block is packed and shipped to its
/// owner rank, then dropped.
pub struct FastqBlockIter<'a> {
    parser: RecordParser<'a>,
    max_block_bytes: usize,
    paired: bool,
    done: bool,
}

impl<'a> FastqBlockIter<'a> {
    pub fn new(text: &'a str, max_block_bytes: usize, paired: bool) -> Self {
        FastqBlockIter {
            parser: RecordParser::new(text),
            max_block_bytes,
            paired,
            done: false,
        }
    }
}

impl Iterator for FastqBlockIter<'_> {
    type Item = Result<Vec<FastqRecord>, FastqError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut block = Vec::new();
        let mut bytes = 0usize;
        loop {
            match self.parser.next_record() {
                None => {
                    self.done = true;
                    break;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Some(Ok(rec)) => {
                    bytes += rec.name.len() + rec.seq.len() + rec.qual.len();
                    block.push(rec);
                }
            }
            if bytes >= self.max_block_bytes && (!self.paired || block.len() % 2 == 0) {
                break;
            }
        }
        if block.is_empty() {
            None
        } else {
            Some(Ok(block))
        }
    }
}

/// Writes records as FASTQ text.
pub fn write_fastq(records: &[FastqRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        let _ = writeln!(out, "@{}", rec.name);
        let _ = writeln!(out, "{}", String::from_utf8_lossy(&rec.seq));
        let _ = writeln!(out, "+");
        let qual: String = rec
            .qual
            .iter()
            .map(|&q| (q.min(93) + PHRED_OFFSET) as char)
            .collect();
        let _ = writeln!(out, "{}", qual);
    }
    out
}

/// Serialises a whole read library as interleaved FASTQ.
pub fn library_to_fastq(lib: &ReadLibrary) -> String {
    let recs: Vec<FastqRecord> = lib
        .reads
        .iter()
        .map(|r| FastqRecord {
            name: r.name.clone(),
            seq: r.seq.clone(),
            qual: r.qual.clone(),
        })
        .collect();
    write_fastq(&recs)
}

/// Parses interleaved FASTQ text into a paired read library with the given
/// insert-size model.
pub fn library_from_fastq(
    name: &str,
    text: &str,
    insert_size: usize,
    insert_sd: usize,
) -> Result<ReadLibrary, FastqError> {
    let recs = parse_fastq(text)?;
    if recs.len() % 2 != 0 {
        return Err(FastqError::OddRecordCount {
            records: recs.len(),
        });
    }
    let mut lib = ReadLibrary::new_paired(name, insert_size, insert_sd);
    let mut it = recs.into_iter();
    while let (Some(a), Some(b)) = (it.next(), it.next()) {
        lib.push_pair(a.into(), b.into());
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "@r1/1\nACGT\n+\nIIII\n@r1/2\nTTGG\n+\n!!II\n";

    #[test]
    fn parse_simple() {
        let recs = parse_fastq(SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "r1/1");
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        assert_eq!(recs[0].qual, vec![40, 40, 40, 40]);
        assert_eq!(recs[1].qual, vec![0, 0, 40, 40]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_fastq("r1\nACGT\n+\nIIII\n").is_err());
        assert!(parse_fastq("@r1\nACGT\nplus\nIIII\n").is_err());
        assert!(parse_fastq("@r1\nACGT\n+\nIII\n").is_err());
        assert!(parse_fastq("@r1\nACGT\n+\n").is_err());
    }

    #[test]
    fn truncated_input_yields_typed_errors() {
        // Mid-record EOF at every possible cut point maps to the precise
        // missing-line variant, with the 1-based record index.
        assert_eq!(
            parse_fastq("@r1\nACGT\n+\nIIII\n@r2"),
            Err(FastqError::MissingSequence { record: 2 })
        );
        assert_eq!(
            parse_fastq("@r1\nACGT"),
            Err(FastqError::MissingSeparator { record: 1 })
        );
        assert_eq!(
            parse_fastq("@r1\nACGT\n+"),
            Err(FastqError::MissingQuality { record: 1 })
        );
        assert_eq!(parse_fastq("@r1\nACGT\n+").unwrap_err().record(), Some(1));
    }

    #[test]
    fn corrupt_record_yields_typed_errors() {
        assert_eq!(
            parse_fastq("r1\nACGT\n+\nIIII\n"),
            Err(FastqError::BadHeader { record: 1 })
        );
        assert_eq!(
            parse_fastq("@r1\nACGT\nplus\nIIII\n"),
            Err(FastqError::BadSeparator { record: 1 })
        );
        assert_eq!(
            parse_fastq("@r1\nACGT\n+\nIII\n"),
            Err(FastqError::QualityLengthMismatch {
                record: 1,
                qual: 3,
                seq: 4
            })
        );
        assert_eq!(
            parse_fastq("@r1\nACGT\n+\nII \u{8}\n"),
            Err(FastqError::QualityOutOfRange { record: 1 })
        );
        assert_eq!(
            library_from_fastq("l", "@only\nACGT\n+\nIIII\n", 1, 1).unwrap_err(),
            FastqError::OddRecordCount { records: 1 }
        );
        // Display keeps the human-readable form (and the String bridge used
        // by ingestion pipelines carries it verbatim).
        let msg: String = FastqError::QualityLengthMismatch {
            record: 7,
            qual: 3,
            seq: 4,
        }
        .into();
        assert_eq!(msg, "record 7: quality length 3 != sequence length 4");
    }

    #[test]
    fn block_iter_truncated_input_yields_typed_error() {
        // The good leading records stream out as blocks; the truncated tail
        // record surfaces as a typed error, then iteration stops.
        let text = "@r0/1\nACGT\n+\nIIII\n@r0/2\nTTGG\n+\n!!II\n@r1/1\nACGT\n+\n";
        let mut it = FastqBlockIter::new(text, 1, true);
        assert_eq!(it.next().unwrap().unwrap().len(), 2);
        assert_eq!(
            it.next().unwrap(),
            Err(FastqError::MissingQuality { record: 3 })
        );
        assert!(it.next().is_none());
        // Bad quality-line length mid-stream, same shape.
        let text = "@r0/1\nACGT\n+\nIIII\n@r0/2\nTTGG\n+\n!!I\n";
        let mut it = FastqBlockIter::new(text, usize::MAX, true);
        assert_eq!(
            it.next().unwrap(),
            Err(FastqError::QualityLengthMismatch {
                record: 2,
                qual: 3,
                seq: 4
            })
        );
        assert!(it.next().is_none());
    }

    #[test]
    fn roundtrip() {
        let recs = parse_fastq(SAMPLE).unwrap();
        let text = write_fastq(&recs);
        let back = parse_fastq(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn crlf_and_missing_trailing_newline_parse_clean() {
        // CRLF line endings with no trailing newline on the final record:
        // without explicit `\r` stripping the last quality line keeps a bare
        // `\r`, fails the length check, and the record is lost.
        let text = "@r1/1\r\nACGT\r\n+\r\nIIII\r\n@r1/2\r\nTTGG\r\n+\r\n!!II";
        let recs = parse_fastq(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        assert_eq!(recs[1].seq, b"TTGG".to_vec());
        assert_eq!(recs[1].qual, vec![0, 0, 40, 40]);
        assert!(recs.iter().all(|r| !r.seq.contains(&b'\r')));
        // Round trip through the (LF) writer is lossless.
        let back = parse_fastq(&write_fastq(&recs)).unwrap();
        assert_eq!(back, recs);
        // And the same records parse identically from LF text without a
        // trailing newline.
        let lf = parse_fastq("@r1/1\nACGT\n+\nIIII\n@r1/2\nTTGG\n+\n!!II").unwrap();
        assert_eq!(lf, recs);
    }

    #[test]
    fn library_roundtrip() {
        let lib = library_from_fastq("lib", SAMPLE, 250, 25).unwrap();
        assert_eq!(lib.num_pairs(), 1);
        assert_eq!(lib.insert_size, 250);
        let text = library_to_fastq(&lib);
        let lib2 = library_from_fastq("lib", &text, 250, 25).unwrap();
        assert_eq!(lib2.reads, lib.reads);
    }

    #[test]
    fn odd_record_count_rejected_for_pairs() {
        let text = "@only\nACGT\n+\nIIII\n";
        assert!(library_from_fastq("l", text, 1, 1).is_err());
    }

    /// Builds interleaved FASTQ text for `n` records with distinct seqs.
    fn interleaved(n: usize) -> String {
        let mut text = String::new();
        for i in 0..n {
            let base = [b'A', b'C', b'G', b'T'][i % 4] as char;
            let seq: String = std::iter::repeat_n(base, 10 + i % 3).collect();
            let qual: String = std::iter::repeat_n('I', seq.len()).collect();
            let _ = writeln!(text, "@r{}/{}\n{}\n+\n{}", i / 2, 1 + i % 2, seq, qual);
        }
        text
    }

    #[test]
    fn block_iter_matches_whole_parse() {
        let text = interleaved(14);
        let whole = parse_fastq(&text).unwrap();
        for max_bytes in [1, 40, 120, 10_000] {
            let blocks: Vec<Vec<FastqRecord>> = FastqBlockIter::new(&text, max_bytes, true)
                .collect::<Result<_, _>>()
                .unwrap();
            let flat: Vec<FastqRecord> = blocks.iter().flatten().cloned().collect();
            assert_eq!(flat, whole, "max_bytes={max_bytes}");
            for b in &blocks {
                assert!(!b.is_empty());
                assert_eq!(b.len() % 2, 0, "pair split at max_bytes={max_bytes}");
            }
            if max_bytes == 1 {
                assert!(blocks.iter().all(|b| b.len() == 2));
            }
        }
    }

    #[test]
    fn block_iter_defers_cut_to_pair_boundary() {
        // Record 0 alone is ~24 bytes in memory, past a 20-byte bound; the
        // block must still carry its mate before cutting.
        let text = interleaved(6);
        let blocks: Vec<Vec<FastqRecord>> = FastqBlockIter::new(&text, 20, true)
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(blocks.len() >= 2);
        assert!(blocks.iter().all(|b| b.len() % 2 == 0));
        // Unpaired mode cuts immediately after the bound instead.
        let single: Vec<Vec<FastqRecord>> = FastqBlockIter::new(&text, 20, false)
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(single.iter().any(|b| b.len() % 2 == 1));
        let flat: Vec<FastqRecord> = single.into_iter().flatten().collect();
        assert_eq!(flat, parse_fastq(&text).unwrap());
    }

    #[test]
    fn block_iter_crlf_and_missing_trailing_newline() {
        let text = "@r0/1\r\nACGTACGT\r\n+\r\nIIIIIIII\r\n@r0/2\r\nTTGGTTGG\r\n+\r\n!!IIII!!";
        let blocks: Vec<Vec<FastqRecord>> = FastqBlockIter::new(text, 4, true)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), 2);
        assert_eq!(blocks[0], parse_fastq(text).unwrap());
        assert_eq!(blocks[0][1].qual, vec![0, 0, 40, 40, 40, 40, 0, 0]);
    }

    #[test]
    fn block_iter_propagates_errors_and_stops() {
        let text = "@r0\nACGT\n+\nIIII\n@bad\nACGT\nplus\nIIII\n@r2\nACGT\n+\nIIII\n";
        let mut it = FastqBlockIter::new(text, 1, false);
        assert_eq!(it.next().unwrap().unwrap().len(), 1);
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }
}
