//! The DNA alphabet and 2-bit base encoding.
//!
//! Bases are represented as upper-case ASCII `A`, `C`, `G`, `T`; `N` marks an
//! unknown base (sequencers emit it for low-confidence cycles). The 2-bit
//! encoding (`A=0, C=1, G=2, T=3`) matches the packing used by the `kmers`
//! crate, so `encode_base`/`decode_base` are the single source of truth for
//! that mapping.

/// The four unambiguous DNA bases, in encoding order.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Returns `true` for one of the four unambiguous upper-case bases.
#[inline]
pub fn is_valid_base(b: u8) -> bool {
    matches!(b, b'A' | b'C' | b'G' | b'T')
}

/// Encodes a base into its 2-bit code. Returns `None` for `N` or any other
/// non-ACGT byte (lower-case input is accepted and normalised).
#[inline]
pub fn encode_base(b: u8) -> Option<u8> {
    match b {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' => Some(3),
        _ => None,
    }
}

/// Decodes a 2-bit code back into an upper-case ASCII base.
///
/// # Panics
/// Panics if `code > 3`.
#[inline]
pub fn decode_base(code: u8) -> u8 {
    BASES[code as usize]
}

/// Watson–Crick complement of a single base. `N` maps to `N`; anything else is
/// passed through unchanged so that callers can complement mixed-case data.
#[inline]
pub fn complement(b: u8) -> u8 {
    match b {
        b'A' => b'T',
        b'C' => b'G',
        b'G' => b'C',
        b'T' => b'A',
        b'a' => b't',
        b'c' => b'g',
        b'g' => b'c',
        b't' => b'a',
        other => other,
    }
}

/// Returns the reverse complement of a sequence as a new vector.
pub fn revcomp(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&b| complement(b)).collect()
}

/// Reverse complements a sequence in place.
pub fn revcomp_in_place(seq: &mut [u8]) {
    seq.reverse();
    for b in seq.iter_mut() {
        *b = complement(*b);
    }
}

/// Counts the fraction of ambiguous (`N`) bases in a sequence; used by the
/// simulator and QC to decide whether a read is usable.
pub fn ambiguous_fraction(seq: &[u8]) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    let n = seq.iter().filter(|&&b| !is_valid_base(b)).count();
    n as f64 / seq.len() as f64
}

/// Normalises a sequence to upper-case, mapping every non-ACGT byte to `N`.
pub fn normalize(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .map(|&b| match b {
            b'A' | b'a' => b'A',
            b'C' | b'c' => b'C',
            b'G' | b'g' => b'G',
            b'T' | b't' => b'T',
            _ => b'N',
        })
        .collect()
}

/// GC content of a sequence in `[0, 1]`; ambiguous bases are ignored in the
/// denominator. Returns 0 for sequences with no unambiguous bases.
pub fn gc_content(seq: &[u8]) -> f64 {
    let mut gc = 0usize;
    let mut total = 0usize;
    for &b in seq {
        match b {
            b'G' | b'C' | b'g' | b'c' => {
                gc += 1;
                total += 1;
            }
            b'A' | b'T' | b'a' | b't' => total += 1,
            _ => {}
        }
    }
    if total == 0 {
        0.0
    } else {
        gc as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for (i, &b) in BASES.iter().enumerate() {
            assert_eq!(encode_base(b), Some(i as u8));
            assert_eq!(decode_base(i as u8), b);
        }
    }

    #[test]
    fn encode_rejects_ambiguous() {
        assert_eq!(encode_base(b'N'), None);
        assert_eq!(encode_base(b'X'), None);
        assert_eq!(encode_base(b'-'), None);
    }

    #[test]
    fn encode_accepts_lowercase() {
        assert_eq!(encode_base(b'a'), Some(0));
        assert_eq!(encode_base(b't'), Some(3));
    }

    #[test]
    fn complement_is_involution() {
        for &b in &BASES {
            assert_eq!(complement(complement(b)), b);
        }
        assert_eq!(complement(b'N'), b'N');
    }

    #[test]
    fn revcomp_simple() {
        assert_eq!(revcomp(b"ACGT"), b"ACGT".to_vec());
        assert_eq!(revcomp(b"AACC"), b"GGTT".to_vec());
        assert_eq!(revcomp(b"GATTACA"), b"TGTAATC".to_vec());
    }

    #[test]
    fn revcomp_in_place_matches_functional() {
        let mut s = b"ACCGTTGAN".to_vec();
        let expect = revcomp(&s);
        revcomp_in_place(&mut s);
        assert_eq!(s, expect);
    }

    #[test]
    fn normalize_maps_unknowns_to_n() {
        assert_eq!(normalize(b"acgtXz-"), b"ACGTNNN".to_vec());
    }

    #[test]
    fn gc_content_basic() {
        assert!((gc_content(b"GGCC") - 1.0).abs() < 1e-12);
        assert!((gc_content(b"AATT") - 0.0).abs() < 1e-12);
        assert!((gc_content(b"ACGT") - 0.5).abs() < 1e-12);
        assert!((gc_content(b"NNNN") - 0.0).abs() < 1e-12);
    }

    #[test]
    fn ambiguous_fraction_counts_n() {
        assert!((ambiguous_fraction(b"ACGN") - 0.25).abs() < 1e-12);
        assert_eq!(ambiguous_fraction(b""), 0.0);
    }
}
