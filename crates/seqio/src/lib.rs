//! Sequence I/O and core sequence types for the MetaHipMer reproduction.
//!
//! This crate provides the low-level building blocks that every other crate in
//! the workspace consumes:
//!
//! * [`alphabet`] — the DNA alphabet (A/C/G/T/N), 2-bit encoding helpers,
//!   complements and reverse complements;
//! * [`read`] — sequencing [`read::Read`]s, read pairs and
//!   [`read::ReadLibrary`]s with insert-size metadata;
//! * [`fasta`] / [`fastq`] — parsing and writing of the standard text formats;
//! * [`mod@reference`] — named reference genomes used by the simulator and the
//!   quality-evaluation crate;
//! * [`qc`] — light-weight quality trimming (the BBtools pre-processing step of
//!   the paper is outside the evaluated pipeline; this is only used by tests
//!   and examples that want slightly dirty data).
//!
//! Sequences are stored as ASCII bytes (`Vec<u8>` of `ACGTN`), which keeps the
//! formats trivially round-trippable and lets the k-mer layer do its own 2-bit
//! packing.

pub mod alphabet;
pub mod fasta;
pub mod fastq;
pub mod qc;
pub mod read;
pub mod reference;
pub mod source;

pub use alphabet::{
    complement, decode_base, encode_base, is_valid_base, revcomp, revcomp_in_place,
};
pub use fasta::{parse_fasta, write_fasta, FastaRecord};
pub use fastq::{parse_fastq, write_fastq, FastqBlockIter, FastqError, FastqRecord};
pub use read::{PairOrientation, Read, ReadId, ReadLibrary, ReadPair};
pub use reference::{ReferenceGenome, ReferenceSet};
pub use source::{LibraryReads, ReadSource};
