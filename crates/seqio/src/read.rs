//! Sequencing reads, read pairs and read libraries.
//!
//! MetaHipMer's input is a set of *paired-end* short-read libraries: each DNA
//! template fragment of a known approximate length (the *insert size*) is
//! sequenced from both ends, producing two reads whose relative placement
//! carries long-range information used by scaffolding (span links) and local
//! assembly (projecting unaligned mates into gaps).

use crate::alphabet;

/// Identifier of a read inside a [`ReadLibrary`]. The pairing convention is
/// positional: reads `2*i` and `2*i + 1` are mates of pair `i`.
pub type ReadId = u64;

/// Relative orientation of the two reads of a pair on the template.
/// Illumina paired-end libraries are forward–reverse (the second read is the
/// reverse complement of template sequence downstream of the first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairOrientation {
    /// Forward–reverse (standard paired-end).
    ForwardReverse,
    /// Reverse–forward (mate-pair style libraries).
    ReverseForward,
}

/// A single sequencing read: a name, the base calls and per-base Phred quality
/// scores (raw, not ASCII-offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Read {
    /// Read name (as it would appear in a FASTQ header, without the leading `@`).
    pub name: String,
    /// Base calls (`ACGTN`, upper-case ASCII).
    pub seq: Vec<u8>,
    /// Phred quality scores, one per base (value, not ASCII character).
    pub qual: Vec<u8>,
}

impl Read {
    /// Creates a read, normalising the sequence to upper-case `ACGTN`.
    pub fn new(name: impl Into<String>, seq: &[u8], qual: &[u8]) -> Self {
        assert_eq!(
            seq.len(),
            qual.len(),
            "sequence and quality must have equal length"
        );
        Read {
            name: name.into(),
            seq: alphabet::normalize(seq),
            qual: qual.to_vec(),
        }
    }

    /// Creates a read with a flat quality score for every base.
    pub fn with_uniform_quality(name: impl Into<String>, seq: &[u8], q: u8) -> Self {
        let qual = vec![q; seq.len()];
        Read::new(name, seq, &qual)
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the read holds no bases.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Mean Phred quality of the read (0 for empty reads).
    pub fn mean_quality(&self) -> f64 {
        if self.qual.is_empty() {
            return 0.0;
        }
        self.qual.iter().map(|&q| q as f64).sum::<f64>() / self.qual.len() as f64
    }

    /// Returns the reverse complement of this read (qualities reversed).
    pub fn reverse_complement(&self) -> Read {
        Read {
            name: self.name.clone(),
            seq: alphabet::revcomp(&self.seq),
            qual: self.qual.iter().rev().copied().collect(),
        }
    }
}

/// A pair of mated reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPair {
    pub r1: Read,
    pub r2: Read,
}

/// A read library: a flat vector of reads with positional pairing plus the
/// library metadata (insert size distribution, orientation) that scaffolding
/// and local assembly need.
///
/// Reads `2*i` and `2*i + 1` are the two ends of template `i`. Unpaired
/// libraries are represented by setting `paired = false`, in which case every
/// read stands alone.
#[derive(Debug, Clone)]
pub struct ReadLibrary {
    /// Library name (used in reports).
    pub name: String,
    /// All reads, pair-interleaved when `paired`.
    pub reads: Vec<Read>,
    /// Whether reads are pair-interleaved.
    pub paired: bool,
    /// Mean insert size (outer distance between pair ends) in bases.
    pub insert_size: usize,
    /// Standard deviation of the insert size.
    pub insert_sd: usize,
    /// Pair orientation.
    pub orientation: PairOrientation,
}

impl ReadLibrary {
    /// Creates an empty paired-end library with the given insert-size model.
    pub fn new_paired(name: impl Into<String>, insert_size: usize, insert_sd: usize) -> Self {
        ReadLibrary {
            name: name.into(),
            reads: Vec::new(),
            paired: true,
            insert_size,
            insert_sd,
            orientation: PairOrientation::ForwardReverse,
        }
    }

    /// Creates an empty unpaired library.
    pub fn new_unpaired(name: impl Into<String>) -> Self {
        ReadLibrary {
            name: name.into(),
            reads: Vec::new(),
            paired: false,
            insert_size: 0,
            insert_sd: 0,
            orientation: PairOrientation::ForwardReverse,
        }
    }

    /// Appends a read pair. Panics if the library is unpaired.
    pub fn push_pair(&mut self, r1: Read, r2: Read) {
        assert!(self.paired, "cannot push a pair into an unpaired library");
        self.reads.push(r1);
        self.reads.push(r2);
    }

    /// Appends a single read. Panics if the library is paired (pairs must stay
    /// interleaved).
    pub fn push_read(&mut self, r: Read) {
        assert!(!self.paired, "paired libraries must use push_pair");
        self.reads.push(r);
    }

    /// Number of reads in the library.
    pub fn num_reads(&self) -> usize {
        self.reads.len()
    }

    /// Number of pairs (0 for unpaired libraries).
    pub fn num_pairs(&self) -> usize {
        if self.paired {
            self.reads.len() / 2
        } else {
            0
        }
    }

    /// Total number of bases across all reads.
    pub fn total_bases(&self) -> usize {
        self.reads.iter().map(|r| r.len()).sum()
    }

    /// Returns the mate's read id for a given read id, or `None` for unpaired
    /// libraries.
    pub fn mate_of(&self, id: ReadId) -> Option<ReadId> {
        if !self.paired {
            return None;
        }
        Some(id ^ 1)
    }

    /// Returns the read with the given id.
    pub fn read(&self, id: ReadId) -> &Read {
        &self.reads[id as usize]
    }

    /// Iterates over `(ReadId, &Read)`.
    pub fn iter(&self) -> impl Iterator<Item = (ReadId, &Read)> {
        self.reads.iter().enumerate().map(|(i, r)| (i as ReadId, r))
    }

    /// Iterates over read pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (&Read, &Read)> {
        self.reads.chunks_exact(2).map(|c| (&c[0], &c[1]))
    }

    /// Splits the read ids of this library into `parts` contiguous, nearly
    /// equal chunks that never split a pair. Used to assign reads to SPMD
    /// ranks.
    pub fn partition_ids(&self, parts: usize) -> Vec<std::ops::Range<ReadId>> {
        assert!(parts > 0);
        let unit = if self.paired { 2 } else { 1 };
        let units = self.reads.len() / unit;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let count = units / parts + usize::from(p < units % parts);
            let end = start + count * unit;
            out.push(start as ReadId..end as ReadId);
            start = end;
        }
        // Any trailing dangling read (odd count in "paired" library) goes to the
        // last chunk so no read is lost.
        if start < self.reads.len() {
            if let Some(last) = out.last_mut() {
                *last = last.start..self.reads.len() as ReadId;
            }
        }
        out
    }

    /// Reorders reads according to `order` (a permutation of pair indices for
    /// paired libraries, or read indices otherwise). This is the primitive used
    /// by read localisation (§II-I of the paper).
    pub fn reorder_pairs(&mut self, order: &[usize]) {
        if self.paired {
            assert_eq!(order.len(), self.num_pairs());
            let mut new_reads = Vec::with_capacity(self.reads.len());
            for &pi in order {
                new_reads.push(self.reads[2 * pi].clone());
                new_reads.push(self.reads[2 * pi + 1].clone());
            }
            self.reads = new_reads;
        } else {
            assert_eq!(order.len(), self.reads.len());
            let mut new_reads = Vec::with_capacity(self.reads.len());
            for &ri in order {
                new_reads.push(self.reads[ri].clone());
            }
            self.reads = new_reads;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_read(name: &str, seq: &[u8]) -> Read {
        Read::with_uniform_quality(name, seq, 35)
    }

    #[test]
    fn read_construction_normalises() {
        let r = Read::new("r1", b"acgtx", &[30; 5]);
        assert_eq!(r.seq, b"ACGTN".to_vec());
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic]
    fn read_rejects_mismatched_quality() {
        let _ = Read::new("r1", b"ACGT", &[30; 3]);
    }

    #[test]
    fn mean_quality() {
        let r = Read::new("r1", b"ACGT", &[10, 20, 30, 40]);
        assert!((r.mean_quality() - 25.0).abs() < 1e-12);
        let empty = Read::new("e", b"", &[]);
        assert_eq!(empty.mean_quality(), 0.0);
    }

    #[test]
    fn reverse_complement_reverses_quals() {
        let r = Read::new("r1", b"AACG", &[1, 2, 3, 4]);
        let rc = r.reverse_complement();
        assert_eq!(rc.seq, b"CGTT".to_vec());
        assert_eq!(rc.qual, vec![4, 3, 2, 1]);
    }

    #[test]
    fn library_pairing_conventions() {
        let mut lib = ReadLibrary::new_paired("lib", 300, 30);
        lib.push_pair(mk_read("a/1", b"ACGT"), mk_read("a/2", b"TTTT"));
        lib.push_pair(mk_read("b/1", b"GGGG"), mk_read("b/2", b"CCCC"));
        assert_eq!(lib.num_reads(), 4);
        assert_eq!(lib.num_pairs(), 2);
        assert_eq!(lib.mate_of(0), Some(1));
        assert_eq!(lib.mate_of(1), Some(0));
        assert_eq!(lib.mate_of(2), Some(3));
        assert_eq!(lib.total_bases(), 16);
        assert_eq!(lib.pairs().count(), 2);
    }

    #[test]
    fn unpaired_library_has_no_mates() {
        let mut lib = ReadLibrary::new_unpaired("u");
        lib.push_read(mk_read("a", b"ACGT"));
        assert_eq!(lib.mate_of(0), None);
        assert_eq!(lib.num_pairs(), 0);
    }

    #[test]
    fn partition_never_splits_pairs() {
        let mut lib = ReadLibrary::new_paired("lib", 300, 30);
        for i in 0..7 {
            lib.push_pair(
                mk_read(&format!("{i}/1"), b"ACGT"),
                mk_read(&format!("{i}/2"), b"ACGT"),
            );
        }
        for parts in 1..6 {
            let ranges = lib.partition_ids(parts);
            assert_eq!(ranges.len(), parts);
            let mut total = 0;
            for r in &ranges {
                assert_eq!((r.end - r.start) % 2, 0, "pair split across ranks");
                total += r.end - r.start;
            }
            assert_eq!(total as usize, lib.num_reads());
            // Ranges must be contiguous and ordered.
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn reorder_pairs_keeps_mates_adjacent() {
        let mut lib = ReadLibrary::new_paired("lib", 300, 30);
        for i in 0..3 {
            lib.push_pair(
                mk_read(&format!("{i}/1"), b"AAAA"),
                mk_read(&format!("{i}/2"), b"CCCC"),
            );
        }
        lib.reorder_pairs(&[2, 0, 1]);
        assert_eq!(lib.reads[0].name, "2/1");
        assert_eq!(lib.reads[1].name, "2/2");
        assert_eq!(lib.reads[2].name, "0/1");
        assert_eq!(lib.reads[5].name, "1/2");
    }
}
