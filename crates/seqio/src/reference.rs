//! Named reference genomes.
//!
//! The simulator (`mgsim`) produces [`ReferenceGenome`]s and the evaluation
//! crate (`asm_metrics`) anchors assemblies back onto them, mirroring how the
//! paper evaluates MG64 against its 64 known reference genomes with metaQUAST.

use crate::fasta::FastaRecord;

/// A single reference genome with optional annotations of planted features.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceGenome {
    /// Genome/organism name.
    pub name: String,
    /// The full genome sequence.
    pub seq: Vec<u8>,
    /// Relative abundance of the organism in the community (arbitrary units,
    /// normalised by [`ReferenceSet::normalized_abundances`]).
    pub abundance: f64,
    /// Half-open intervals of planted ribosomal-RNA-like conserved regions,
    /// used to score rRNA recovery.
    pub rrna_regions: Vec<(usize, usize)>,
}

impl ReferenceGenome {
    /// Creates a reference genome with no annotations and unit abundance.
    pub fn new(name: impl Into<String>, seq: Vec<u8>) -> Self {
        ReferenceGenome {
            name: name.into(),
            seq,
            abundance: 1.0,
            rrna_regions: Vec::new(),
        }
    }

    /// Genome length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the genome is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// A set of reference genomes forming a (synthetic) community.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReferenceSet {
    pub genomes: Vec<ReferenceGenome>,
}

impl ReferenceSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a genome and returns its index.
    pub fn push(&mut self, g: ReferenceGenome) -> usize {
        self.genomes.push(g);
        self.genomes.len() - 1
    }

    /// Number of genomes in the community.
    pub fn len(&self) -> usize {
        self.genomes.len()
    }

    /// True if the set holds no genomes.
    pub fn is_empty(&self) -> bool {
        self.genomes.is_empty()
    }

    /// Total bases across all genomes.
    pub fn total_bases(&self) -> usize {
        self.genomes.iter().map(|g| g.len()).sum()
    }

    /// Abundances normalised to sum to 1. Returns an empty vector for an empty
    /// set.
    pub fn normalized_abundances(&self) -> Vec<f64> {
        let total: f64 = self.genomes.iter().map(|g| g.abundance).sum();
        if total <= 0.0 {
            return vec![0.0; self.genomes.len()];
        }
        self.genomes.iter().map(|g| g.abundance / total).collect()
    }

    /// Expected read coverage of each genome given a total number of sequenced
    /// bases: coverage_i = total_bases * p_i / genome_len_i.
    pub fn expected_coverages(&self, total_sequenced_bases: usize) -> Vec<f64> {
        self.normalized_abundances()
            .iter()
            .zip(&self.genomes)
            .map(|(p, g)| {
                if g.is_empty() {
                    0.0
                } else {
                    total_sequenced_bases as f64 * p / g.len() as f64
                }
            })
            .collect()
    }

    /// Converts the set into FASTA records.
    pub fn to_fasta(&self) -> Vec<FastaRecord> {
        self.genomes
            .iter()
            .map(|g| FastaRecord {
                id: g.name.clone(),
                description: format!("abundance={:.6}", g.abundance),
                seq: g.seq.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> ReferenceSet {
        let mut s = ReferenceSet::new();
        let mut a = ReferenceGenome::new("a", vec![b'A'; 1000]);
        a.abundance = 3.0;
        let mut b = ReferenceGenome::new("b", vec![b'C'; 500]);
        b.abundance = 1.0;
        s.push(a);
        s.push(b);
        s
    }

    #[test]
    fn abundances_normalise() {
        let s = set();
        let p = s.normalized_abundances();
        assert!((p[0] - 0.75).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_coverage_scales_with_abundance_and_length() {
        let s = set();
        let cov = s.expected_coverages(10_000);
        // genome a: 10000 * 0.75 / 1000 = 7.5x ; genome b: 10000 * 0.25 / 500 = 5x
        assert!((cov[0] - 7.5).abs() < 1e-9);
        assert!((cov[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn totals() {
        let s = set();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_bases(), 1500);
        assert!(!s.is_empty());
    }

    #[test]
    fn fasta_export_includes_all() {
        let s = set();
        let fa = s.to_fasta();
        assert_eq!(fa.len(), 2);
        assert_eq!(fa[0].id, "a");
        assert_eq!(fa[1].seq.len(), 500);
    }

    #[test]
    fn zero_abundance_handled() {
        let mut s = ReferenceSet::new();
        let mut g = ReferenceGenome::new("z", vec![b'A'; 10]);
        g.abundance = 0.0;
        s.push(g);
        assert_eq!(s.normalized_abundances(), vec![0.0]);
    }
}
