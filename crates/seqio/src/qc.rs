//! Light-weight read quality control.
//!
//! The paper pre-processes its datasets with BBtools (adapter trimming and
//! contaminant removal) *before* the evaluated pipeline. Our simulated reads
//! carry no adapters, so the pipeline does not need this step; the functions
//! here exist so that tests and examples can exercise dirty inputs and so the
//! pipeline can optionally drop hopeless reads.

use crate::read::{Read, ReadLibrary};

/// Parameters for quality trimming.
#[derive(Debug, Clone, Copy)]
pub struct QcParams {
    /// Trim bases from the 3' end while their quality is below this threshold.
    pub min_qual: u8,
    /// Discard reads shorter than this after trimming.
    pub min_len: usize,
    /// Discard reads whose fraction of `N` bases exceeds this.
    pub max_n_fraction: f64,
}

impl Default for QcParams {
    fn default() -> Self {
        QcParams {
            min_qual: 2,
            min_len: 32,
            max_n_fraction: 0.1,
        }
    }
}

/// Trims low-quality bases from the 3' end of a read. Returns the trimmed
/// length (the read is modified in place).
pub fn trim_read_3prime(read: &mut Read, min_qual: u8) -> usize {
    let mut keep = read.qual.len();
    while keep > 0 && read.qual[keep - 1] < min_qual {
        keep -= 1;
    }
    read.seq.truncate(keep);
    read.qual.truncate(keep);
    keep
}

/// Returns `true` if the read passes the QC filters (after trimming).
pub fn read_passes(read: &Read, params: &QcParams) -> bool {
    if read.len() < params.min_len {
        return false;
    }
    crate::alphabet::ambiguous_fraction(&read.seq) <= params.max_n_fraction
}

/// Summary of a QC pass over a library.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QcReport {
    pub pairs_in: usize,
    pub pairs_kept: usize,
    pub bases_trimmed: usize,
}

/// Applies 3' quality trimming and pair-level filtering to a paired library.
/// A pair is kept only if *both* mates pass, mirroring how assemblers consume
/// paired data. Returns the filtered library and a report.
pub fn qc_paired_library(lib: &ReadLibrary, params: &QcParams) -> (ReadLibrary, QcReport) {
    assert!(lib.paired, "qc_paired_library requires a paired library");
    let mut out = ReadLibrary::new_paired(lib.name.clone(), lib.insert_size, lib.insert_sd);
    out.orientation = lib.orientation;
    let mut report = QcReport {
        pairs_in: lib.num_pairs(),
        ..Default::default()
    };
    for (r1, r2) in lib.pairs() {
        let mut a = r1.clone();
        let mut b = r2.clone();
        let before = a.len() + b.len();
        trim_read_3prime(&mut a, params.min_qual);
        trim_read_3prime(&mut b, params.min_qual);
        report.bases_trimmed += before - (a.len() + b.len());
        if read_passes(&a, params) && read_passes(&b, params) {
            out.push_pair(a, b);
            report.pairs_kept += 1;
        }
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimming_removes_low_quality_tail() {
        let mut r = Read::new("r", b"ACGTACGT", &[30, 30, 30, 30, 30, 1, 1, 0]);
        let kept = trim_read_3prime(&mut r, 2);
        assert_eq!(kept, 5);
        assert_eq!(r.seq, b"ACGTA".to_vec());
    }

    #[test]
    fn trimming_keeps_high_quality_read() {
        let mut r = Read::with_uniform_quality("r", b"ACGTACGT", 30);
        assert_eq!(trim_read_3prime(&mut r, 2), 8);
    }

    #[test]
    fn filters_short_and_ambiguous() {
        let params = QcParams {
            min_qual: 2,
            min_len: 4,
            max_n_fraction: 0.25,
        };
        assert!(read_passes(
            &Read::with_uniform_quality("a", b"ACGT", 30),
            &params
        ));
        assert!(!read_passes(
            &Read::with_uniform_quality("b", b"ACG", 30),
            &params
        ));
        assert!(!read_passes(
            &Read::with_uniform_quality("c", b"ANNN", 30),
            &params
        ));
    }

    #[test]
    fn paired_qc_drops_pairs_with_one_bad_mate() {
        let mut lib = ReadLibrary::new_paired("lib", 200, 20);
        lib.push_pair(
            Read::with_uniform_quality("good/1", b"ACGTACGTACGT", 30),
            Read::with_uniform_quality("good/2", b"ACGTACGTACGT", 30),
        );
        lib.push_pair(
            Read::with_uniform_quality("bad/1", b"ACGTACGTACGT", 30),
            Read::with_uniform_quality("bad/2", b"AC", 30),
        );
        let params = QcParams {
            min_qual: 2,
            min_len: 4,
            max_n_fraction: 0.1,
        };
        let (out, report) = qc_paired_library(&lib, &params);
        assert_eq!(report.pairs_in, 2);
        assert_eq!(report.pairs_kept, 1);
        assert_eq!(out.num_pairs(), 1);
        assert_eq!(out.reads[0].name, "good/1");
    }
}
